//! Operation counters matching the paper's table columns.
//!
//! Every table in the evaluation reports, per run: successful `add()`s,
//! successful `rem()`s, element traversals inside `con()` ("cons"),
//! element traversals inside the search function ("trav"), failed `CAS()`
//! operations ("fail") and search-function restarts ("rtry"). The
//! counters are plain `u64`s owned by each per-thread [`Handle`]
//! (no atomics — counting must not perturb the measured cache traffic)
//! and are summed by the harness after the threads join.
//!
//! [`Handle`]: crate::set::SetHandle

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Per-thread (or aggregated) operation counters.
///
/// The fields mirror the table columns of the paper one-to-one.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Successful `add()` operations ("adds").
    pub adds: u64,
    /// Successful `rem()` operations ("rems").
    pub rems: u64,
    /// List element traversals performed by `con()` operations ("cons").
    pub cons: u64,
    /// List element traversals performed inside the search function
    /// (`pos()`), including backward steps in the doubly variants ("trav").
    pub trav: u64,
    /// Failed `CAS()` operations, across search, `add()` and `rem()`
    /// ("fail").
    pub fail: u64,
    /// Restarts of the search function — `goto retry` in the listings
    /// ("rtry").
    pub rtry: u64,
}

impl OpStats {
    /// All-zero counters.
    pub const ZERO: OpStats = OpStats {
        adds: 0,
        rems: 0,
        cons: 0,
        trav: 0,
        fail: 0,
        rtry: 0,
    };

    /// Sum of both traversal counters; a proxy for total list work.
    #[inline]
    pub fn total_traversals(&self) -> u64 {
        self.cons + self.trav
    }

    /// `true` if every counter is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

impl Add for OpStats {
    type Output = OpStats;
    #[inline]
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            adds: self.adds + rhs.adds,
            rems: self.rems + rhs.rems,
            cons: self.cons + rhs.cons,
            trav: self.trav + rhs.trav,
            fail: self.fail + rhs.fail,
            rtry: self.rtry + rhs.rtry,
        }
    }
}

impl AddAssign for OpStats {
    #[inline]
    fn add_assign(&mut self, rhs: OpStats) {
        *self = *self + rhs;
    }
}

impl Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> OpStats {
        iter.fold(OpStats::ZERO, Add::add)
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adds={} rems={} cons={} trav={} fail={} rtry={}",
            self.adds, self.rems, self.cons, self.trav, self.fail, self.rtry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum_aggregate_fieldwise() {
        let a = OpStats {
            adds: 1,
            rems: 2,
            cons: 3,
            trav: 4,
            fail: 5,
            rtry: 6,
        };
        let b = OpStats {
            adds: 10,
            rems: 20,
            cons: 30,
            trav: 40,
            fail: 50,
            rtry: 60,
        };
        let s = a + b;
        assert_eq!(s.adds, 11);
        assert_eq!(s.rtry, 66);
        let total: OpStats = [a, b, OpStats::ZERO].into_iter().sum();
        assert_eq!(total, s);
    }

    #[test]
    fn zero_identity() {
        let a = OpStats {
            adds: 7,
            ..OpStats::ZERO
        };
        assert_eq!(a + OpStats::ZERO, a);
        assert!(OpStats::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn total_traversals_combines_cons_and_trav() {
        let a = OpStats {
            cons: 100,
            trav: 23,
            ..OpStats::ZERO
        };
        assert_eq!(a.total_traversals(), 123);
    }

    #[test]
    fn display_contains_all_columns() {
        let s = format!("{}", OpStats::ZERO);
        for col in ["adds", "rems", "cons", "trav", "fail", "rtry"] {
            assert!(s.contains(col), "missing column {col} in {s}");
        }
    }
}
