//! Operation counters matching the paper's table columns.
//!
//! Every table in the evaluation reports, per run: successful `add()`s,
//! successful `rem()`s, element traversals inside `con()` ("cons"),
//! element traversals inside the search function ("trav"), failed `CAS()`
//! operations ("fail") and search-function restarts ("rtry"). The
//! counters are plain `u64`s owned by each per-thread [`Handle`]
//! (no atomics — counting must not perturb the measured cache traffic)
//! and are summed by the harness after the threads join.
//!
//! [`Handle`]: crate::set::SetHandle

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Per-thread (or aggregated) operation counters.
///
/// The fields mirror the table columns of the paper one-to-one.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Successful `add()` operations ("adds").
    pub adds: u64,
    /// Successful `rem()` operations ("rems").
    pub rems: u64,
    /// List element traversals performed by `con()` operations ("cons").
    pub cons: u64,
    /// List element traversals performed inside the search function
    /// (`pos()`), including backward steps in the doubly variants ("trav").
    pub trav: u64,
    /// Failed `CAS()` operations, across search, `add()` and `rem()`
    /// ("fail").
    pub fail: u64,
    /// Restarts of the search function — `goto retry` in the listings
    /// ("rtry").
    pub rtry: u64,
}

impl OpStats {
    /// All-zero counters.
    pub const ZERO: OpStats = OpStats {
        adds: 0,
        rems: 0,
        cons: 0,
        trav: 0,
        fail: 0,
        rtry: 0,
    };

    /// Sum of both traversal counters; a proxy for total list work.
    #[inline]
    pub fn total_traversals(&self) -> u64 {
        self.cons + self.trav
    }

    /// `true` if every counter is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

impl Add for OpStats {
    type Output = OpStats;
    #[inline]
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            adds: self.adds + rhs.adds,
            rems: self.rems + rhs.rems,
            cons: self.cons + rhs.cons,
            trav: self.trav + rhs.trav,
            fail: self.fail + rhs.fail,
            rtry: self.rtry + rhs.rtry,
        }
    }
}

impl AddAssign for OpStats {
    #[inline]
    fn add_assign(&mut self, rhs: OpStats) {
        *self = *self + rhs;
    }
}

impl Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> OpStats {
        iter.fold(OpStats::ZERO, Add::add)
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adds={} rems={} cons={} trav={} fail={} rtry={}",
            self.adds, self.rems, self.cons, self.trav, self.fail, self.rtry
        )
    }
}

/// Pads (and aligns) `T` to two cache lines so neighbouring values never
/// share a line — the classic false-sharing fence (128 bytes covers the
/// adjacent-line prefetcher on current x86 parts).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(
    /// The padded value.
    pub T,
);

/// Shared registry of per-handle live-item counters, one cache-padded
/// slot per handle.
///
/// Replaces the O(n) `len_estimate` chain scan: every successful `add`
/// bumps the handle's own slot, every successful `remove` decrements
/// it, and an estimate is the O(handles) sum of the slots. Each slot is
/// written by exactly one thread (its owning handle) and only read by
/// others, and the padding keeps the slots on distinct cache lines, so
/// the hot path costs one store to an exclusively-held line — no shared
/// traffic, preserving the paper's cost model.
///
/// Slots outlive their handles (the net count of a dropped handle must
/// keep contributing); a new handle reuses a slot with no other owner,
/// continuing from its residual value, so the registry stays bounded by
/// the peak handle count.
pub(crate) struct LiveSlots {
    slots: crate::sync::Mutex<Vec<std::sync::Arc<CachePadded<crate::sync::AtomicI64>>>>,
}

impl Default for LiveSlots {
    fn default() -> Self {
        LiveSlots {
            slots: crate::sync::Mutex::new(Vec::new()),
        }
    }
}

impl LiveSlots {
    /// Claims a counter slot for a new handle: an orphaned slot (no
    /// other owner) when available, a fresh one otherwise.
    pub(crate) fn register(&self) -> std::sync::Arc<CachePadded<crate::sync::AtomicI64>> {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.iter().find(|s| std::sync::Arc::strong_count(s) == 1) {
            return std::sync::Arc::clone(slot);
        }
        let slot = std::sync::Arc::new(CachePadded(crate::sync::AtomicI64::new(0)));
        slots.push(std::sync::Arc::clone(&slot));
        slot
    }

    /// Sum of all slots, clamped at zero: the live-item estimate. Exact
    /// when quiescent; during concurrency, in-flight operations make it
    /// an estimate (same contract as the chain scan it replaces).
    pub(crate) fn sum(&self) -> usize {
        let total: i64 = self
            .slots
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.0.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        total.max(0) as usize
    }
}

/// Single-writer increment of a handle's live counter (a plain
/// load+store — the owning handle is the only writer).
#[inline]
pub(crate) fn live_bump(slot: &CachePadded<crate::sync::AtomicI64>, delta: i64) {
    use std::sync::atomic::Ordering::Relaxed;
    slot.0.store(slot.0.load(Relaxed) + delta, Relaxed);
}

/// A cache-padded windowed load counter: one per elastic shard, bumped
/// by operating handles in amortized blocks and read / reset by the load
/// monitor when it closes an observation window.
///
/// All accesses are `Relaxed` — the counter steers rebalancing
/// heuristics, never correctness, so a slightly stale read only delays
/// or anticipates a split by one window.
#[derive(Debug, Default)]
pub(crate) struct WindowCounter(CachePadded<crate::sync::AtomicU64>);

impl WindowCounter {
    /// Adds `n` operations to the current window.
    #[inline]
    pub(crate) fn bump(&self, n: u64) {
        self.0 .0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// The window's running count.
    #[inline]
    pub(crate) fn read(&self) -> u64 {
        self.0 .0.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Closes the window: resets the count to zero.
    #[inline]
    pub(crate) fn reset(&self) {
        self.0 .0.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum_aggregate_fieldwise() {
        let a = OpStats {
            adds: 1,
            rems: 2,
            cons: 3,
            trav: 4,
            fail: 5,
            rtry: 6,
        };
        let b = OpStats {
            adds: 10,
            rems: 20,
            cons: 30,
            trav: 40,
            fail: 50,
            rtry: 60,
        };
        let s = a + b;
        assert_eq!(s.adds, 11);
        assert_eq!(s.rtry, 66);
        let total: OpStats = [a, b, OpStats::ZERO].into_iter().sum();
        assert_eq!(total, s);
    }

    #[test]
    fn zero_identity() {
        let a = OpStats {
            adds: 7,
            ..OpStats::ZERO
        };
        assert_eq!(a + OpStats::ZERO, a);
        assert!(OpStats::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn total_traversals_combines_cons_and_trav() {
        let a = OpStats {
            cons: 100,
            trav: 23,
            ..OpStats::ZERO
        };
        assert_eq!(a.total_traversals(), 123);
    }

    #[test]
    fn display_contains_all_columns() {
        let s = format!("{}", OpStats::ZERO);
        for col in ["adds", "rems", "cons", "trav", "fail", "rtry"] {
            assert!(s.contains(col), "missing column {col} in {s}");
        }
    }

    #[test]
    fn cache_padded_slots_do_not_share_lines() {
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }

    #[test]
    fn window_counter_accumulates_and_resets() {
        let c = WindowCounter::default();
        assert_eq!(c.read(), 0);
        c.bump(64);
        c.bump(3);
        assert_eq!(c.read(), 67);
        c.reset();
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn live_slots_sum_and_reuse() {
        use std::sync::Arc;
        let reg = LiveSlots::default();
        let a = reg.register();
        live_bump(&a, 3);
        let b = reg.register();
        live_bump(&b, 2);
        assert_eq!(reg.sum(), 5);
        live_bump(&b, -4); // net can dip below zero transiently
        assert_eq!(reg.sum(), 1);
        // Dropping an owner keeps its residual; a new handle reuses the
        // orphaned slot without resetting it.
        let a_ptr = Arc::as_ptr(&a);
        drop(a);
        let c = reg.register();
        assert_eq!(Arc::as_ptr(&c), a_ptr, "orphaned slot is reused");
        assert_eq!(reg.sum(), 1);
        live_bump(&c, 1);
        assert_eq!(reg.sum(), 2);
    }
}
