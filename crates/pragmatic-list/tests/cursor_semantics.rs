//! Targeted tests of the per-thread cursor semantics — the paper's most
//! delicate improvement. Each test isolates one rule the implementation
//! must uphold:
//!
//! * a cursor pointing at a node that another thread logically deleted
//!   must be detected (mark check) and abandoned, never trusted;
//! * the search function requires a *strictly smaller* cursor key; the
//!   wait-free `con()` accepts an equal-key cursor (see DESIGN.md §7);
//! * non-cursor variants must forget their position between public
//!   operations but reuse it across internal retries.

use pragmatic_list::variants::{
    DoublyCursorList, SinglyCursorList, SinglyFetchOrList, SinglyMildList,
};
use pragmatic_list::{ConcurrentOrderedSet, SetHandle};

/// Another handle deletes the node the cursor rests on; the cursor owner
/// must still answer correctly for keys on both sides of the stale
/// position.
#[test]
fn stale_cursor_on_deleted_node_is_detected() {
    let list = SinglyCursorList::<i64>::new();
    let mut owner = list.handle();
    let mut intruder = list.handle();
    for k in [10i64, 20, 30, 40, 50] {
        owner.add(k);
    }
    // Park the owner's cursor just before 30.
    assert!(owner.contains(30));
    // The intruder logically deletes 20 and 30 (the cursor region).
    assert!(intruder.remove(30));
    assert!(intruder.remove(20));
    // Owner's next operations must not resurrect or miss anything.
    assert!(
        !owner.contains(30),
        "deleted key visible through stale cursor"
    );
    assert!(!owner.contains(20));
    assert!(owner.contains(40));
    assert!(owner.contains(10));
    assert!(owner.add(25), "insert through the stale region");
    assert!(owner.contains(25));
    drop(owner);
    drop(intruder);
    let mut list = list;
    list.check_invariants().unwrap();
    assert_eq!(list.collect_keys(), vec![10, 25, 40, 50]);
}

/// Same scenario for the doubly list: the stale cursor is abandoned via
/// the backward walk, not a head restart — and the answers stay right.
#[test]
fn doubly_stale_cursor_walks_backwards() {
    let list = DoublyCursorList::<i64>::new();
    let mut owner = list.handle();
    let mut intruder = list.handle();
    for k in 1..=100i64 {
        owner.add(k);
    }
    assert!(owner.contains(90)); // cursor deep in the list
    for k in 50..=95 {
        intruder.remove(k); // delete a whole region including the cursor
    }
    let before = owner.stats().trav;
    assert!(!owner.contains(75));
    assert!(owner.contains(42));
    assert!(owner.contains(96));
    let walked = owner.stats().trav;
    // The recovery must be local: bounded by the deleted region, far
    // below a from-scratch traversal per op (100 nodes each).
    assert!(walked - before < 300, "recovery should ride prev pointers");
    drop(owner);
    drop(intruder);
    let mut list = list;
    list.check_invariants().unwrap();
}

/// The equal-key cursor rule for con(): after locating key k, an
/// immediate repeat con(k) must cost O(1), not a head restart.
#[test]
fn repeated_contains_same_key_is_constant() {
    let list = SinglyCursorList::<i64>::new();
    let mut h = list.handle();
    for k in 1..=2_000 {
        h.add(k);
    }
    assert!(h.contains(1_500)); // position the cursor
    let before = h.stats().cons;
    for _ in 0..100 {
        assert!(h.contains(1_500));
    }
    let after = h.stats().cons;
    assert!(
        after - before <= 200,
        "repeat con(k) must start at the cursor: {} steps",
        after - before
    );
}

/// The search function must NOT use an equal-key cursor (it needs
/// pred.key < key to produce a valid insert position): removing the
/// cursor key itself still works.
#[test]
fn remove_at_cursor_key_restarts_correctly() {
    let list = SinglyCursorList::<i64>::new();
    let mut h = list.handle();
    for k in 1..=50 {
        h.add(k);
    }
    for k in (1..=50).rev() {
        assert!(h.contains(k), "con before rem at {k}");
        assert!(h.remove(k), "rem at {k}");
        assert!(!h.contains(k), "con after rem at {k}");
    }
    drop(h);
    let mut list = list;
    assert!(list.collect_keys().is_empty());
    list.check_invariants().unwrap();
}

/// Re-adding a key right after removing it through the same handle: the
/// cursor may reference the *old* (marked) node carrying the same key;
/// the fresh search must insert a new node, not resurrect the old one.
#[test]
fn readd_after_remove_through_same_cursor() {
    for _ in 0..50 {
        let list = SinglyFetchOrList::<i64>::new();
        let mut h = list.handle();
        h.add(7);
        assert!(h.remove(7));
        assert!(h.add(7), "re-add must succeed");
        assert!(h.contains(7));
        assert!(h.remove(7));
        assert!(!h.contains(7));
        drop(h);
        let mut list = list;
        list.check_invariants().unwrap();
        assert!(list.collect_keys().is_empty());
    }
}

/// Variant b) (mild, no cursor) must behave identically whether or not
/// a previous operation left internal state behind — public operations
/// are position-independent.
#[test]
fn non_cursor_variant_is_position_independent() {
    let a = SinglyMildList::<i64>::new();
    let b = SinglyMildList::<i64>::new();
    let mut ha = a.handle();
    let mut hb = b.handle();
    for k in 1..=200 {
        ha.add(k);
        hb.add(k);
    }
    // Warm ha's internal position deep into the list; hb stays cold.
    assert!(ha.contains(190));
    let _ = ha.take_stats();
    let _ = hb.take_stats();
    // The same fresh operation must cost the same traversals on both.
    assert!(ha.contains(100));
    assert!(hb.contains(100));
    assert_eq!(
        ha.stats().cons,
        hb.stats().cons,
        "variant b) must not carry positions across operations"
    );
}

/// Cursor survives the cursor node being the head-adjacent node and the
/// list emptying completely.
#[test]
fn cursor_on_emptied_list() {
    let list = DoublyCursorList::<i64>::new();
    let mut h = list.handle();
    h.add(1);
    assert!(h.contains(1)); // cursor now at/near the only node
    assert!(h.remove(1));
    assert!(!h.contains(1));
    assert!(!h.remove(1));
    assert!(h.add(2));
    assert!(h.contains(2));
    assert!(h.remove(2));
    drop(h);
    let mut list = list;
    assert!(list.collect_keys().is_empty());
    list.check_invariants().unwrap();
}

/// Concurrent cursor chaos: every thread repeatedly parks its cursor on
/// keys another thread is about to delete. Accounting must balance.
#[test]
fn cursor_chaos_concurrent() {
    use pragmatic_list::OpStats;
    let list = DoublyCursorList::<i64>::new();
    let totals: OpStats = std::thread::scope(|s| {
        let ws: Vec<_> = (0..6i64)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    for round in 0..400i64 {
                        let k = (round * 7 + t) % 60 + 1;
                        h.add(k);
                        h.contains(k); // park cursor at k
                        let victim = (k + 1) % 60 + 1; // likely another thread's cursor
                        h.remove(victim);
                        h.contains(victim);
                    }
                    h.take_stats()
                })
            })
            .collect();
        ws.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let mut list = list;
    list.check_invariants().unwrap();
    assert_eq!(totals.adds - totals.rems, list.collect_keys().len() as u64);
}
