//! Property-based tests on the core list invariants (proptest).

use proptest::prelude::*;

use pragmatic_list::variants::{
    DoublyBackptrList, DoublyCursorList, DraconicList, SinglyCursorList, SinglyFetchOrList,
    SinglyMildList,
};
use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
enum Op {
    Add(i64),
    Remove(i64),
    Contains(i64),
}

fn ops(range: i64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..3, 1..=range).prop_map(|(o, k)| match o {
            0 => Op::Add(k),
            1 => Op::Remove(k),
            _ => Op::Contains(k),
        }),
        1..len,
    )
}

/// Sequential semantics equal BTreeSet, and the structure validates,
/// for any variant and any tape.
fn semantics_hold<S: ConcurrentOrderedSet<i64>>(tape: &[Op]) {
    let list = S::new();
    let mut h = list.handle();
    let mut model = BTreeSet::new();
    for &op in tape {
        match op {
            Op::Add(k) => assert_eq!(h.add(k), model.insert(k)),
            Op::Remove(k) => assert_eq!(h.remove(k), model.remove(&k)),
            Op::Contains(k) => assert_eq!(h.contains(k), model.contains(&k)),
        }
    }
    let st = h.stats();
    drop(h);
    let mut list = list;
    let live = list.collect_keys();
    assert_eq!(live, model.iter().copied().collect::<Vec<_>>());
    list.check_invariants().unwrap();
    // Accounting: single-threaded, no CAS can fail and successes balance.
    assert_eq!(st.fail, 0);
    assert_eq!(st.rtry, 0);
    assert_eq!(st.adds - st.rems, live.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_variants_semantics(tape in ops(24, 300)) {
        semantics_hold::<DraconicList<i64>>(&tape);
        semantics_hold::<SinglyMildList<i64>>(&tape);
        semantics_hold::<SinglyCursorList<i64>>(&tape);
        semantics_hold::<SinglyFetchOrList<i64>>(&tape);
        semantics_hold::<DoublyBackptrList<i64>>(&tape);
        semantics_hold::<DoublyCursorList<i64>>(&tape);
    }

    /// Two handles on the same thread interleave arbitrarily: cursors
    /// are per-handle state and must never corrupt each other.
    #[test]
    fn two_handles_interleaved(tape in ops(16, 200), picks in proptest::collection::vec(proptest::bool::ANY, 200)) {
        let list = DoublyCursorList::<i64>::new();
        let mut h1 = list.handle();
        let mut h2 = list.handle();
        let mut model = BTreeSet::new();
        for (i, &op) in tape.iter().enumerate() {
            let h = if *picks.get(i).unwrap_or(&false) { &mut h1 } else { &mut h2 };
            match op {
                Op::Add(k) => assert_eq!(h.add(k), model.insert(k)),
                Op::Remove(k) => assert_eq!(h.remove(k), model.remove(&k)),
                Op::Contains(k) => assert_eq!(h.contains(k), model.contains(&k)),
            }
        }
        drop(h1);
        drop(h2);
        let mut list = list;
        list.check_invariants().unwrap();
        assert_eq!(list.collect_keys(), model.into_iter().collect::<Vec<_>>());
    }

    /// Node accounting: allocations never exceed adds-attempted + 1
    /// spare per handle, and never drop below the number of live keys.
    #[test]
    fn allocation_accounting(tape in ops(16, 200)) {
        let list = SinglyCursorList::<i64>::new();
        let mut h = list.handle();
        let mut attempted = 0u64;
        for &op in &tape {
            if let Op::Add(k) = op {
                h.add(k);
                attempted += 1;
            }
        }
        drop(h);
        let mut list = list;
        let live = list.collect_keys().len();
        let allocated = list.allocated_nodes();
        prop_assert!(allocated as u64 <= attempted + 1);
        prop_assert!(allocated >= live);
    }

    /// take_stats drains; stats accumulate monotonically.
    #[test]
    fn stats_monotone_and_drainable(tape in ops(16, 150)) {
        let list = SinglyMildList::<i64>::new();
        let mut h = list.handle();
        let mut last_total = 0u64;
        for &op in &tape {
            match op {
                Op::Add(k) => { h.add(k); }
                Op::Remove(k) => { h.remove(k); }
                Op::Contains(k) => { h.contains(k); }
            }
            let s = h.stats();
            let total = s.adds + s.rems + s.cons + s.trav + s.fail + s.rtry;
            prop_assert!(total >= last_total, "counters must not decrease");
            last_total = total;
        }
        let drained = h.take_stats();
        prop_assert_eq!(drained.adds + drained.rems, last_total.min(drained.adds + drained.rems));
        prop_assert!(h.stats().is_zero());
    }

    /// len_approx on a quiescent list equals the snapshot length.
    #[test]
    fn quiescent_len_matches_snapshot(tape in ops(32, 250)) {
        let list = DoublyCursorList::<i64>::new();
        let mut h = list.handle();
        for &op in &tape {
            match op {
                Op::Add(k) => { h.add(k); }
                Op::Remove(k) => { h.remove(k); }
                Op::Contains(k) => { h.contains(k); }
            }
        }
        let approx = list.len_approx();
        drop(h);
        let mut list = list;
        prop_assert_eq!(approx, list.to_vec().len());
    }
}

/// Concurrent proptest-lite: a fixed set of generated tapes run by real
/// threads; the per-key result sequence must still be *possible* (we
/// only assert accounting + invariants, the linearizability test suite
/// covers ordering).
#[test]
fn concurrent_tapes_accounting() {
    for seed in 0..4u64 {
        let list = SinglyFetchOrList::<i64>::new();
        let totals: pragmatic_list::OpStats = std::thread::scope(|s| {
            let ws: Vec<_> = (0..6)
                .map(|t| {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (t as u64 + 1);
                        for _ in 0..2_000 {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let k = ((x >> 33) % 48) as i64 + 1;
                            match (x >> 13) % 3 {
                                0 => {
                                    h.add(k);
                                }
                                1 => {
                                    h.remove(k);
                                }
                                _ => {
                                    h.contains(k);
                                }
                            }
                        }
                        h.take_stats()
                    })
                })
                .collect();
            ws.into_iter().map(|w| w.join().unwrap()).sum()
        });
        let mut list = list;
        list.check_invariants().unwrap();
        assert_eq!(totals.adds - totals.rems, list.collect_keys().len() as u64);
    }
}
