//! Model-checked protocol tests: the four synchronization protocols the
//! paper reproduction leans on, each explored under every thread
//! interleaving within a preemption bound by the vendored `interleave`
//! checker (compile with `RUSTFLAGS="--cfg interleave"`).
//!
//! What the checker adds over the plain concurrency tests: schedules the
//! host scheduler never produces, an acquire/release-aware visibility
//! model (so a `Relaxed` where `Acquire` is needed manifests as a stale
//! read), and use-after-free tombstones on every instrumented atomic (so
//! a reclamation protocol that frees a node while a traversal can still
//! reach it fails the run instead of silently reading freed memory).
//!
//! Each test asserts `iterations > 1`: a single-schedule pass would mean
//! the facade is not actually routing through the checker.

#![cfg(interleave)]

use std::sync::Arc;

use interleave::{Builder, Report};
use pragmatic_list::reclaim::EpochReclaim;
use pragmatic_list::set::{ConcurrentOrderedSet, SetHandle};
use pragmatic_list::singly::SinglyList;
use pragmatic_list::unrolled::UnrolledList;
use pragmatic_list::variants::{
    SinglyCursorEpochList, SinglyCursorList, SinglyEpochList, SinglyHpList,
};
use pragmatic_list::{ElasticSet, LoadPolicy};

/// An elastic policy under which `force_split_at` always commits on a
/// 4-key shard (the default `min_split_keys: 16` would abort the split
/// and leave the seal → drain handshake unexercised), with the load
/// monitor effectively disabled so only the forced migration runs.
fn elastic_policy() -> LoadPolicy {
    LoadPolicy {
        initial_shards: 1,
        max_shards: 16,
        check_period: 1 << 20,
        window_min_ops: 1 << 20,
        split_share_pct: 10,
        merge_share_pct: 0,
        min_split_keys: 2,
        ..LoadPolicy::default()
    }
}

/// A builder at the default depth, or — when `INTERLEAVE_DEEP=1` is set
/// (the scheduled CI job) — with a raised preemption bound and iteration
/// budget for a much larger schedule space.
fn builder(bound: usize) -> Builder {
    let deep = std::env::var_os("INTERLEAVE_DEEP").is_some_and(|v| v == "1");
    Builder::new()
        .preemption_bound(if deep { bound + 1 } else { bound })
        .max_iterations(if deep { 2_000_000 } else { 30_000 })
}

/// Common acceptance: no failing schedule, and more than one schedule
/// actually explored (proof the facade routed through the checker).
#[track_caller]
fn accept(name: &str, report: Report) {
    eprintln!("{name}: explored {} schedules", report.iterations);
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(
        report.iterations > 1,
        "expected real exploration, got {} iteration(s)",
        report.iterations
    );
}

/// Protocol 1: concurrent mark / unlink / insert on a two-node list
/// (arena reclamation, so no reclamation protocol interferes). One
/// thread removes 10 while the main thread inserts 15 — every
/// interleaving must linearize to `{15, 20}`.
#[test]
fn mark_unlink_insert_two_node_list() {
    let report = builder(2).check(|| {
        let set = Arc::new(SinglyList::<i64, true, true, false>::new());
        {
            let mut h = set.handle();
            assert!(h.add(10));
            assert!(h.add(20));
        }
        let s2 = Arc::clone(&set);
        let t = interleave::thread::spawn(move || {
            let mut h = s2.handle();
            h.remove(10)
        });
        let inserted = {
            let mut h = set.handle();
            h.add(15)
        };
        let removed = t.join().unwrap();
        assert!(removed, "10 was present; the remover must win its mark");
        assert!(inserted, "15 was absent; the inserter must succeed");
        let mut set = Arc::into_inner(set).expect("all handles dropped");
        set.check_invariants().unwrap();
        let keys = set.collect_keys();
        assert_eq!(keys, vec![15, 20], "linearized outcome");
    });
    accept("mark_unlink_insert", report);
}

/// Protocol 2: the hazard-pointer protect-and-revalidate handshake
/// (`acquire_curr`): a traversal publishes a hazard on `curr` and
/// re-reads `pred`'s link, racing a remover that marks, unlinks, and
/// retires the same node. The retire-side scan must observe the hazard;
/// a protocol bug surfaces as a use-after-free tombstone hit on the
/// freed node's atomics.
#[test]
fn hazard_protect_and_revalidate() {
    let report = builder(1).check(|| {
        let set = Arc::new(SinglyHpList::<i64>::new());
        {
            let mut h = set.handle();
            assert!(h.add(10));
            assert!(h.add(20));
        }
        let s2 = Arc::clone(&set);
        let t = interleave::thread::spawn(move || {
            let mut h = s2.handle();
            // Remove and drop the handle: unregistering scans and frees
            // this thread's retired nodes, so the free runs while the
            // main thread may still be traversing.
            h.remove(10)
        });
        let seen = {
            let mut h = set.handle();
            (h.contains(10), h.contains(20))
        };
        let removed = t.join().unwrap();
        assert!(removed);
        assert!(seen.1, "20 is never removed; traversal must see it");
        let mut set = Arc::into_inner(set).expect("all handles dropped");
        set.check_invariants().unwrap();
        assert_eq!(set.collect_keys(), vec![20]);
    });
    accept("hazard_protect_and_revalidate", report);
}

/// Protocol 3: epoch pin / defer / collect. A reader pins and traverses
/// while a remover retires a node into the global epoch collector and
/// drives collection. The three-epoch grace period must keep the node
/// alive until the reader unpins; premature frees hit the checker's
/// use-after-free tombstones. The collector's process-global state is
/// reset between executions via `on_reset`.
#[test]
fn epoch_pin_defer_collect() {
    let report = builder(1)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(SinglyEpochList::<i64>::new());
            {
                let mut h = set.handle();
                assert!(h.add(10));
                assert!(h.add(20));
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                let removed = h.remove(10);
                // Drive collection so frees happen while the reader may
                // still be pinned mid-traversal.
                crossbeam_epoch::pin().flush();
                removed
            });
            let seen = {
                let mut h = set.handle();
                (h.contains(10), h.contains(20))
            };
            assert!(t.join().unwrap());
            assert!(seen.1);
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            assert_eq!(set.collect_keys(), vec![20]);
        });
    accept("epoch_pin_defer_collect", report);
}

/// Protocol 5: the unrolled list's node-split race. A `CAP = 2` node
/// holding `[10, 20]` is full, so the spawned thread's `add(15)` runs
/// the full retirement protocol — freeze the run word, mark `next`,
/// splice the node into `[10]` + `[20]`, then re-insert 15 — while the
/// main thread removes 20, whose ownership migrates from the splitting
/// node to the freshly published right half mid-protocol. Every
/// interleaving must linearize to `{10, 15}`; a walker that acts on a
/// mark without seeing the frozen image trips the *marked ⇒ frozen*
/// `debug_assert` in `splice_out` (exactly what the `interleave_mutate`
/// self-test weakens `RUN_PUBLISH` to provoke).
#[test]
fn unrolled_split_race() {
    let report = builder(2).check(|| {
        let set = Arc::new(UnrolledList::<i64, 2>::new());
        {
            let mut h = set.handle();
            assert!(h.add(10));
            assert!(h.add(20));
        }
        let s2 = Arc::clone(&set);
        let t = interleave::thread::spawn(move || {
            let mut h = s2.handle();
            h.add(15)
        });
        let removed = {
            let mut h = set.handle();
            h.remove(20)
        };
        let inserted = t.join().unwrap();
        assert!(inserted, "15 was absent; the splitting inserter must win");
        assert!(removed, "20 was present throughout; the remover must win");
        let mut set = Arc::into_inner(set).expect("all handles dropped");
        set.check_invariants().unwrap();
        assert_eq!(set.collect_keys(), vec![10, 15], "linearized outcome");
    });
    accept("unrolled_split_race", report);
}

/// Protocol 6: the unrolled list's empty-node unlink race. Two removers
/// drain the only fat node (`CAP = 2`, `[10, 20]`): whichever empties
/// it installs the frozen empty image and the terminal mark, and the
/// main thread's following `add(15)` must help splice the carcass out
/// before (or while) inserting. Every interleaving ends at `{15}` with
/// both removes succeeding exactly once.
#[test]
fn unrolled_empty_node_unlink_race() {
    let report = builder(1).check(|| {
        let set = Arc::new(UnrolledList::<i64, 2>::new());
        {
            let mut h = set.handle();
            assert!(h.add(10));
            assert!(h.add(20));
        }
        let s2 = Arc::clone(&set);
        let t = interleave::thread::spawn(move || {
            let mut h = s2.handle();
            h.remove(10)
        });
        let (removed, inserted) = {
            let mut h = set.handle();
            (h.remove(20), h.add(15))
        };
        assert!(t.join().unwrap(), "10 was present; its remover must win");
        assert!(removed, "20 was present; its remover must win");
        assert!(inserted, "15 was absent; the inserter must succeed");
        let mut set = Arc::into_inner(set).expect("all handles dropped");
        set.check_invariants().unwrap();
        assert_eq!(set.collect_keys(), vec![15], "linearized outcome");
    });
    accept("unrolled_empty_node_unlink_race", report);
}

/// Protocol 6b: unrolled retirement under epoch reclamation. Draining
/// `[20, 30]` empties the right fat node, which retires the node *and*
/// its frozen image into the global collector while the main thread is
/// mid-traversal; the grace period must keep the node's instrumented
/// atomics alive until the reader unpins (premature frees hit the
/// checker's use-after-free tombstones).
#[test]
fn unrolled_epoch_retire_during_traversal() {
    let report = builder(1)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(UnrolledList::<i64, 2, EpochReclaim>::new());
            {
                let mut h = set.handle();
                for k in [10, 20, 30] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                let a = h.remove(20);
                let b = h.remove(30);
                // Drive collection so frees happen while the reader may
                // still be pinned mid-traversal.
                crossbeam_epoch::pin().flush();
                (a, b)
            });
            let seen = {
                let mut h = set.handle();
                (h.contains(10), h.contains(30))
            };
            let (a, b) = t.join().unwrap();
            assert!(a && b, "both removes must win");
            assert!(seen.0, "10 is never removed; traversal must see it");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            assert_eq!(set.collect_keys(), vec![10]);
        });
    accept("unrolled_epoch_retire_during_traversal", report);
}

/// Protocol 4: the elastic seal → activity-slot drain handshake. A
/// writer publishes its shard id in an activity slot (`SeqCst`) and
/// re-checks the seal; a migrator seals the shard, then drains the
/// activity slots before moving items. Every interleaving must either
/// route the write to the new shard or complete it before the drain —
/// never lose it.
#[test]
fn elastic_seal_drain_handshake() {
    // The RCU router retires superseded tables through the global epoch
    // collector, so elastic executions need the epoch reset hook.
    let report = builder(1)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                elastic_policy(),
            ));
            {
                let mut h = set.handle();
                for k in [10, 400, 700, 1_000] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                h.add(500)
            });
            // Race a split against the in-flight add: seal, drain the
            // activity slots, migrate.
            let split = set.force_split_at(600);
            assert!(split, "the forced split must commit");
            let added = t.join().unwrap();
            assert!(added, "the racing add must not be lost");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            let mut h = set.handle();
            for k in [10, 400, 500, 700, 1_000] {
                assert!(h.contains(k), "key {k} must survive the migration");
            }
        });
    accept("elastic_seal_drain_handshake", report);
}

/// Protocol 7: the RCU router's publish → read → retire handshake. The
/// read path is a single `Acquire` load of the published table pointer —
/// no mutex, no version handshake — so a reader routes through whichever
/// table it observes while a migrator CAS-publishes the successor
/// (`TABLE_PUBLISH`, `Release` on success) and retires the superseded
/// table through the epoch collector. Every interleaving must (a) route
/// the reader to a table whose freshly built shard backends are fully
/// visible — the release/acquire pair is what makes the bulk-loaded
/// contents travel with the pointer — and (b) keep the retired table's
/// instrumented atomics alive while any reader still routes through it
/// (a premature free trips the checker's use-after-free tombstones).
/// Once the reader quiesces, driving the collector must free every
/// superseded table.
#[test]
fn rcu_router_publish_read_retire() {
    let report = builder(1)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                elastic_policy(),
            ));
            {
                let mut h = set.handle();
                for k in [10, 400, 700, 1_000] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                // A fresh handle snapshots the table with the one
                // Acquire load and routes both probes through it,
                // racing the CAS-publish and the old table's retirement.
                let mut h = s2.handle();
                (h.contains(10), h.contains(1_000))
            });
            assert!(set.force_split_at(600), "the forced split must commit");
            let (lo, hi) = t.join().unwrap();
            assert!(lo, "key 10 must stay visible across the table publish");
            assert!(hi, "key 1000 must stay visible across the table publish");
            // Retire leg: the reader is gone, so collection must free
            // the pre-split table (three-epoch grace ⇒ a few flushes).
            for _ in 0..8 {
                if set.tables_alive() == 1 {
                    break;
                }
                crossbeam_epoch::pin().flush();
            }
            assert_eq!(set.tables_alive(), 1, "retired router tables must collect");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
        });
    accept("rcu_router_publish_read_retire", report);
}

/// Protocol 8: the combine-slot publish → claim → handoff chain. With
/// delegation pinned on, the spawned thread's `add(15)` travels through
/// its combine slot: key into the payload cell, `COMBINE_PUBLISH`
/// (`Release`) flips the slot pending, and whichever handle wins the
/// combiner lock — the waiter itself or the main thread combining for
/// its own `add(25)` — applies the op and publishes the result with
/// `COMBINER_HANDOFF` (`Release`). The waiter's immediate `contains(15)`
/// must then see its own delegated insert through a *direct* read of the
/// shard backend: exactly the release/acquire edge the handoff ordering
/// exists for (and the one the `interleave_mutate` self-test weakens).
#[test]
fn slot_publish_result_visible() {
    let report = builder(2)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                elastic_policy(),
            ));
            set.pin_combining(true);
            {
                let mut h = set.handle();
                assert!(h.add(10));
                assert!(h.add(20));
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                let added = h.add(15);
                (added, h.contains(15))
            });
            let added_main = {
                let mut h = set.handle();
                h.add(25)
            };
            let (added, seen) = t.join().unwrap();
            assert!(added, "15 was absent; the delegated add must succeed");
            assert!(seen, "the waiter must see its own delegated insert");
            assert!(added_main, "25 was absent; the combining add must succeed");
            assert!(set.combined() > 0, "at least one op must combine");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            assert_eq!(set.collect_keys(), vec![10, 15, 20, 25]);
        });
    accept("slot_publish_result_visible", report);
}

/// Protocol 9: a delegated op racing the seal → drain migration. The
/// spawned thread's `add(500)` enqueues into its combine slot on the
/// original shard while the main thread force-splits it: the combiner
/// (holding an activity slot, which the migrator's drain waits on)
/// either finishes the op against the pre-copy backend, or the waiter
/// observes the seal, retracts its still-unclaimed slot with a CAS, and
/// re-routes through the post-split table. Every interleaving must
/// commit the add exactly once — never lose it, never double-apply it.
#[test]
fn combiner_handoff_no_lost_op() {
    let report = builder(1)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                elastic_policy(),
            ));
            set.pin_combining(true);
            {
                let mut h = set.handle();
                for k in [10, 400, 700, 1_000] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                h.add(500)
            });
            let split = set.force_split_at(600);
            assert!(split, "the forced split must commit");
            let added = t.join().unwrap();
            assert!(added, "the delegated add must not be lost");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            let mut h = set.handle();
            for k in [10, 400, 500, 700, 1_000] {
                assert!(h.contains(k), "key {k} must survive the migration");
            }
        });
    accept("combiner_handoff_no_lost_op", report);
}

/// Protocol 10: combiner drain under epoch reclamation. A delegated
/// `remove(20)` unlinks and retires a node through the global epoch
/// collector from whichever thread combines it, while the other thread
/// traverses the same shard; the grace period must keep the retired
/// node's instrumented atomics alive until every reader unpins
/// (premature frees hit the checker's use-after-free tombstones).
#[test]
fn combiner_drain_epoch_retire() {
    let report = builder(1)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorEpochList<i64>>::with_policy(
                elastic_policy(),
            ));
            set.pin_combining(true);
            {
                let mut h = set.handle();
                for k in [10, 20, 30] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                let removed = h.remove(20);
                // Drive collection so frees happen while the reader may
                // still be pinned mid-traversal.
                crossbeam_epoch::pin().flush();
                removed
            });
            let seen = {
                let mut h = set.handle();
                (h.contains(10), h.contains(30))
            };
            assert!(t.join().unwrap(), "20 was present; the remove must win");
            assert!(seen.0, "10 is never removed; traversal must see it");
            assert!(seen.1, "30 is never removed; traversal must see it");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            assert_eq!(set.collect_keys(), vec![10, 30]);
        });
    accept("combiner_drain_epoch_retire", report);
}
