//! Mutation self-test for the model checker: compile with
//! `RUSTFLAGS="--cfg interleave --cfg interleave_mutate"` and the
//! elastic activity-slot publish is deliberately weakened from `SeqCst`
//! to `Relaxed` (see `SLOT_PUBLISH` in `elastic.rs`). This test asserts
//! the checker *catches* that seeded bug — the evidence that the
//! protocol tests are load-bearing rather than vacuously green.
//!
//! The race the weakening reintroduces is store buffering: the writer
//! publishes its shard id and then checks the seal, the migrator seals
//! and then scans the slots. With a `Relaxed` publish the two stores are
//! no longer globally ordered against the two loads, so a schedule
//! exists where the writer sees "unsealed" *and* the drain scan sees an
//! idle slot — the migration then copies the shard while the write is
//! still in flight, and the written key is lost.

#![cfg(all(interleave, interleave_mutate))]

use std::sync::Arc;

use interleave::Builder;
use pragmatic_list::set::{ConcurrentOrderedSet, SetHandle};
use pragmatic_list::variants::SinglyCursorList;
use pragmatic_list::{ElasticSet, LoadPolicy};

#[test]
fn weakened_slot_publish_is_detected() {
    let report = Builder::new()
        .preemption_bound(2)
        .max_iterations(200_000)
        .check(|| {
            // Same policy as the passing protocol test: a committed
            // split on a 4-key shard, load monitor disabled.
            let policy = LoadPolicy {
                initial_shards: 1,
                max_shards: 16,
                check_period: 1 << 20,
                window_min_ops: 1 << 20,
                split_share_pct: 10,
                merge_share_pct: 0,
                min_split_keys: 2,
            };
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                policy,
            ));
            {
                let mut h = set.handle();
                for k in [10, 400, 700, 1_000] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                h.add(500)
            });
            assert!(set.force_split_at(600), "the forced split must commit");
            let added = t.join().unwrap();
            assert!(added, "the racing add must not be lost");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            let mut h = set.handle();
            for k in [10, 400, 500, 700, 1_000] {
                assert!(h.contains(k), "key {k} must survive the migration");
            }
        });
    eprintln!("mutation run explored {} schedules", report.iterations);
    let failure = report
        .failure
        .expect("the seeded SeqCst→Relaxed mutation must produce a failing schedule");
    eprintln!(
        "mutation caught after {} schedules:\n{failure}",
        report.iterations
    );
}
