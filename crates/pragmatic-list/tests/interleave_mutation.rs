//! Mutation self-test for the model checker: compile with
//! `RUSTFLAGS="--cfg interleave --cfg interleave_mutate"` and the
//! elastic activity-slot publish is deliberately weakened from `SeqCst`
//! to `Relaxed` (see `SLOT_PUBLISH` in `elastic.rs`). This test asserts
//! the checker *catches* that seeded bug — the evidence that the
//! protocol tests are load-bearing rather than vacuously green.
//!
//! The race the weakening reintroduces is store buffering: the writer
//! publishes its shard id and then checks the seal, the migrator seals
//! and then scans the slots. With a `Relaxed` publish the two stores are
//! no longer globally ordered against the two loads, so a schedule
//! exists where the writer sees "unsealed" *and* the drain scan sees an
//! idle slot — the migration then copies the shard while the write is
//! still in flight, and the written key is lost.

#![cfg(all(interleave, interleave_mutate))]

use std::sync::Arc;

use interleave::Builder;
use pragmatic_list::set::{ConcurrentOrderedSet, SetHandle};
use pragmatic_list::unrolled::UnrolledList;
use pragmatic_list::variants::SinglyCursorList;
use pragmatic_list::{ElasticSet, LoadPolicy};

/// A committed split on a 4-key shard, load monitor disabled — the same
/// policy as the passing protocol tests.
fn elastic_policy() -> LoadPolicy {
    LoadPolicy {
        initial_shards: 1,
        max_shards: 16,
        check_period: 1 << 20,
        window_min_ops: 1 << 20,
        split_share_pct: 10,
        merge_share_pct: 0,
        min_split_keys: 2,
        ..LoadPolicy::default()
    }
}

#[test]
fn weakened_slot_publish_is_detected() {
    let report = Builder::new()
        .preemption_bound(2)
        .max_iterations(200_000)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let policy = elastic_policy();
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                policy,
            ));
            {
                let mut h = set.handle();
                for k in [10, 400, 700, 1_000] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                h.add(500)
            });
            assert!(set.force_split_at(600), "the forced split must commit");
            let added = t.join().unwrap();
            assert!(added, "the racing add must not be lost");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            let mut h = set.handle();
            for k in [10, 400, 500, 700, 1_000] {
                assert!(h.contains(k), "key {k} must survive the migration");
            }
        });
    eprintln!("mutation run explored {} schedules", report.iterations);
    let failure = report
        .failure
        .expect("the seeded SeqCst→Relaxed mutation must produce a failing schedule");
    eprintln!(
        "mutation caught after {} schedules:\n{failure}",
        report.iterations
    );
}

/// The unrolled list's seeded mutation: `interleave_mutate` weakens
/// `RUN_PUBLISH` (see `unrolled.rs`) from `AcqRel` to `Relaxed` on the
/// freeze `CAS()` and the retire `fetch_or`. The retirement protocol is
/// freeze → mark → splice, and its *marked ⇒ frozen* invariant is what
/// the weakening breaks: with a `Relaxed` mark, a walker's acquire load
/// of `next` can observe the mark without synchronizing with the freeze
/// that program-order preceded it, so its load of the run word can
/// still return the stale unfrozen image. The helping splice asserts
/// the invariant (`debug_assert!` in `splice_out`), so the checker must
/// find a schedule where a concurrent walker trips it during a split.
#[test]
fn weakened_run_publish_is_detected() {
    let report = Builder::new()
        .preemption_bound(2)
        .max_iterations(200_000)
        .check(|| {
            // Same shape as the passing `unrolled_split_race` protocol
            // test: a full CAP = 2 node forces add(15) through
            // freeze/mark/splice while the main thread's remove(20)
            // walks onto the marked node and helps.
            let set = Arc::new(UnrolledList::<i64, 2>::new());
            {
                let mut h = set.handle();
                assert!(h.add(10));
                assert!(h.add(20));
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                h.add(15)
            });
            let removed = {
                let mut h = set.handle();
                h.remove(20)
            };
            let inserted = t.join().unwrap();
            assert!(inserted, "15 was absent; the splitting inserter must win");
            assert!(removed, "20 was present throughout; the remover must win");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            assert_eq!(set.collect_keys(), vec![10, 15], "linearized outcome");
        });
    eprintln!(
        "unrolled mutation run explored {} schedules",
        report.iterations
    );
    let failure = report
        .failure
        .expect("the seeded AcqRel→Relaxed RUN_PUBLISH mutation must produce a failing schedule");
    eprintln!(
        "unrolled mutation caught after {} schedules:\n{failure}",
        report.iterations
    );
}

/// The RCU router's seeded mutation: `interleave_mutate` weakens
/// `TABLE_PUBLISH` (see `sync.rs`) from `Release` to `Relaxed` on the
/// table-publish CAS. Without the release edge, a reader's single
/// `Acquire` load of the table pointer can observe the *new* table
/// before the stores that bulk-loaded its freshly built shard backends
/// are visible, so a routed lookup reads a stale (empty) backend and
/// misses a key that was present before the migration. The checker must
/// find such a stale-route schedule — the reader-only racing thread
/// keeps the activity-slot weakening out of the picture, so the failure
/// is attributable to the table publish.
#[test]
fn weakened_table_publish_is_detected() {
    let report = Builder::new()
        .preemption_bound(2)
        .max_iterations(200_000)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                elastic_policy(),
            ));
            {
                let mut h = set.handle();
                for k in [10, 400, 700, 1_000] {
                    assert!(h.add(k));
                }
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                (h.contains(10), h.contains(1_000))
            });
            assert!(set.force_split_at(600), "the forced split must commit");
            let (lo, hi) = t.join().unwrap();
            assert!(lo, "key 10 must stay visible across the table publish");
            assert!(hi, "key 1000 must stay visible across the table publish");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
        });
    eprintln!(
        "router mutation run explored {} schedules",
        report.iterations
    );
    let failure = report.failure.expect(
        "the seeded Release→Relaxed TABLE_PUBLISH mutation must produce a failing schedule",
    );
    eprintln!(
        "router mutation caught after {} schedules:\n{failure}",
        report.iterations
    );
}

/// The flat-combining seeded mutation: `interleave_mutate` weakens
/// `COMBINER_HANDOFF` (see `sync.rs`) from `Release` to `Relaxed` on
/// the combiner's done-store. Without the release edge, a waiter's
/// `Acquire` spin load can observe the done state before the combiner's
/// backend stores are visible, so a thread returns from a delegated
/// `add` and then misses its own key on an immediate direct `contains`.
/// Delegation is pinned on so every write travels through a combine
/// slot; the main thread's own `add` makes it a candidate cross-thread
/// combiner for the spawned thread's op.
#[test]
fn weakened_combiner_handoff_is_detected() {
    let report = Builder::new()
        .preemption_bound(2)
        .max_iterations(200_000)
        .on_reset(crossbeam_epoch::interleave_reset)
        .check(|| {
            let set = Arc::new(ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(
                elastic_policy(),
            ));
            set.pin_combining(true);
            {
                let mut h = set.handle();
                assert!(h.add(10));
                assert!(h.add(20));
            }
            let s2 = Arc::clone(&set);
            let t = interleave::thread::spawn(move || {
                let mut h = s2.handle();
                let added = h.add(15);
                (added, h.contains(15))
            });
            let added_main = {
                let mut h = set.handle();
                h.add(25)
            };
            let (added, seen) = t.join().unwrap();
            assert!(added, "15 was absent; the delegated add must succeed");
            assert!(seen, "the waiter must see its own delegated insert");
            assert!(added_main, "25 was absent; the combining add must succeed");
            let mut set = Arc::into_inner(set).expect("all handles dropped");
            set.check_invariants().unwrap();
            assert_eq!(set.collect_keys(), vec![10, 15, 20, 25]);
        });
    eprintln!(
        "combiner mutation run explored {} schedules",
        report.iterations
    );
    let failure = report.failure.expect(
        "the seeded Release→Relaxed COMBINER_HANDOFF mutation must produce a failing schedule",
    );
    eprintln!(
        "combiner mutation caught after {} schedules:\n{failure}",
        report.iterations
    );
}
