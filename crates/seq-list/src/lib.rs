//! # seq-list
//!
//! Sequential ordered linked lists: the *thread-private baseline* of the
//! paper's benchmarks and the differential-testing oracle for the
//! concurrent variants in `pragmatic-list`.
//!
//! §3 of the paper: "The benchmarks can also be configured such that each
//! thread operates on a private list […] we can use either the lock-free
//! implementation, or a standard, sequential (doubly or singly linked)
//! list implementation." This crate provides both:
//!
//! * [`SinglySeqList`] — a plain sorted singly linked list (safe,
//!   `Box`-based);
//! * [`DoublySeqList`] — a sorted doubly linked list over an index arena,
//!   with the same per-operation *cursor* the paper adds to the
//!   concurrent lists, searching forwards or backwards from the last
//!   position.
//!
//! Both count element traversals compatibly with the paper's
//! "cons"/"trav" columns via [`SeqStats`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod doubly;
pub mod singly;

pub use doubly::DoublySeqList;
pub use singly::SinglySeqList;

/// Traversal counters for the sequential lists (the subset of the paper's
/// columns that makes sense without concurrency).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SeqStats {
    /// Successful insertions.
    pub adds: u64,
    /// Successful removals.
    pub rems: u64,
    /// Element traversals in `contains`.
    pub cons: u64,
    /// Element traversals in `insert`/`remove` searches.
    pub trav: u64,
}

impl std::ops::Add for SeqStats {
    type Output = SeqStats;
    fn add(self, r: SeqStats) -> SeqStats {
        SeqStats {
            adds: self.adds + r.adds,
            rems: self.rems + r.rems,
            cons: self.cons + r.cons,
            trav: self.trav + r.trav,
        }
    }
}

/// Common interface of the two sequential lists, used by the harness's
/// thread-private mode and by the differential-test oracle.
pub trait SeqOrderedSet<K: Ord + Copy> {
    /// Creates an empty set.
    fn new() -> Self;
    /// Inserts `key`; `true` iff it was absent.
    fn insert(&mut self, key: K) -> bool;
    /// Removes `key`; `true` iff it was present.
    fn remove(&mut self, key: K) -> bool;
    /// Membership test.
    fn contains(&mut self, key: K) -> bool;
    /// Number of elements.
    fn len(&self) -> usize;
    /// `true` iff empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Ordered snapshot.
    fn to_vec(&self) -> Vec<K>;
    /// Accumulated traversal counters.
    fn stats(&self) -> SeqStats;

    /// Ordered snapshot of the keys inside `range` — the sequential
    /// mirror of the concurrent `OrderedHandle::range` scan (here
    /// trivially exact: there is no concurrency to be weak against).
    fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> Vec<K>
    where
        Self: Sized,
    {
        self.to_vec()
            .into_iter()
            .filter(|k| range.contains(k))
            .collect()
    }

    /// Ordered snapshot of all keys (alias of [`to_vec`](Self::to_vec),
    /// mirroring `OrderedHandle::iter`).
    fn iter_keys(&self) -> Vec<K>
    where
        Self: Sized,
    {
        self.to_vec()
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;

    #[test]
    fn seq_range_default_matches_filter() {
        let mut l = SinglySeqList::<i64>::new();
        for k in [9, 1, 5, 3, 7] {
            l.insert(k);
        }
        assert_eq!(l.range(3..8), vec![3, 5, 7]);
        assert_eq!(l.range(..), vec![1, 3, 5, 7, 9]);
        assert_eq!(l.range(..=5), vec![1, 3, 5]);
        assert_eq!(l.iter_keys(), l.to_vec());

        let mut d = DoublySeqList::<i64>::new();
        for k in [9, 1, 5, 3, 7] {
            d.insert(k);
        }
        assert_eq!(d.range(3..8), vec![3, 5, 7]);
        assert_eq!(d.range(4..5), Vec::<i64>::new());
    }
}
