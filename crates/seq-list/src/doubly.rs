//! Sorted doubly linked list over an index arena, with a search cursor.
//!
//! The sequential counterpart of the paper's doubly-cursor variant f):
//! every operation remembers the position it located (the *cursor*) and
//! the next operation searches forwards or backwards from there,
//! whichever the key ordering demands. On locality-friendly workloads
//! (the deterministic benchmark's ascending/descending sweeps) this turns
//! the per-operation cost from O(n) into O(distance).
//!
//! Nodes live in a `Vec` arena addressed by `u32` indices with an
//! internal free list, so the structure is fully safe Rust, cache-dense,
//! and reuses memory — a reasonable stand-in for the C baseline the
//! paper's thread-private mode uses.

use crate::{SeqOrderedSet, SeqStats};

const NIL: u32 = u32::MAX;

#[derive(Clone)]
struct Slot<K> {
    key: K,
    next: u32,
    prev: u32,
}

/// A sorted doubly linked list with a per-list cursor and O(1) node reuse.
///
/// # Examples
///
/// ```
/// use seq_list::{DoublySeqList, SeqOrderedSet};
///
/// let mut l = DoublySeqList::new();
/// for k in (0..100).rev() {
///     l.insert(k); // descending inserts are O(1) thanks to the cursor
/// }
/// assert_eq!(l.len(), 100);
/// assert!(l.stats().trav < 300);
/// ```
pub struct DoublySeqList<K> {
    slots: Vec<Slot<K>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    /// Index of the node the last operation located (or its predecessor);
    /// `NIL` when unset.
    cursor: u32,
    len: usize,
    stats: SeqStats,
}

impl<K: Ord + Copy> Default for DoublySeqList<K> {
    fn default() -> Self {
        SeqOrderedSet::new()
    }
}

impl<K: Ord + Copy> DoublySeqList<K> {
    #[inline]
    fn slot(&self, i: u32) -> &Slot<K> {
        &self.slots[i as usize]
    }

    fn alloc(&mut self, key: K) -> u32 {
        if let Some(i) = self.free.pop() {
            let s = &mut self.slots[i as usize];
            s.key = key;
            s.next = NIL;
            s.prev = NIL;
            i
        } else {
            self.slots.push(Slot {
                key,
                next: NIL,
                prev: NIL,
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Finds the first node with `node.key >= key`, returning its index
    /// (or `NIL` when every key is smaller), starting from the cursor
    /// when possible and walking in the cheaper direction.
    fn seek(&mut self, key: K) -> u32 {
        let mut at = if self.cursor == NIL {
            self.head
        } else {
            self.cursor
        };
        if at == NIL {
            return NIL;
        }
        if self.slot(at).key < key {
            // Forward until >= key.
            loop {
                let next = self.slot(at).next;
                if next == NIL {
                    return NIL;
                }
                self.stats.trav += 1;
                if self.slot(next).key >= key {
                    return next;
                }
                at = next;
            }
        } else {
            // Backward until the predecessor is < key.
            loop {
                let prev = self.slot(at).prev;
                if prev == NIL {
                    return at;
                }
                if self.slot(prev).key < key {
                    return at;
                }
                self.stats.trav += 1;
                at = prev;
            }
        }
    }

    /// Iterates keys in ascending order.
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            list: self,
            at: self.head,
        }
    }

    /// Removes all elements, keeping the arena capacity.
    pub fn clear(&mut self) {
        let mut at = self.head;
        while at != NIL {
            let next = self.slot(at).next;
            self.free.push(at);
            at = next;
        }
        self.head = NIL;
        self.tail = NIL;
        self.cursor = NIL;
        self.len = 0;
    }

    /// Internal consistency check (test support): forward and backward
    /// links agree and keys are strictly increasing.
    pub fn validate(&self) -> bool {
        let mut at = self.head;
        let mut prev = NIL;
        let mut count = 0usize;
        while at != NIL {
            let s = self.slot(at);
            if s.prev != prev {
                return false;
            }
            if prev != NIL && self.slot(prev).key >= s.key {
                return false;
            }
            prev = at;
            at = s.next;
            count += 1;
            if count > self.slots.len() {
                return false; // cycle
            }
        }
        prev == self.tail && count == self.len
    }
}

impl<K: Ord + Copy> SeqOrderedSet<K> for DoublySeqList<K> {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cursor: NIL,
            len: 0,
            stats: SeqStats::default(),
        }
    }

    fn insert(&mut self, key: K) -> bool {
        let at = self.seek(key);
        if at != NIL && self.slot(at).key == key {
            self.cursor = at;
            return false;
        }
        let node = self.alloc(key);
        match at {
            NIL => {
                // Append at the tail.
                let old_tail = self.tail;
                self.slots[node as usize].prev = old_tail;
                if old_tail == NIL {
                    self.head = node;
                } else {
                    self.slots[old_tail as usize].next = node;
                }
                self.tail = node;
            }
            succ => {
                let pred = self.slot(succ).prev;
                self.slots[node as usize].next = succ;
                self.slots[node as usize].prev = pred;
                self.slots[succ as usize].prev = node;
                if pred == NIL {
                    self.head = node;
                } else {
                    self.slots[pred as usize].next = node;
                }
            }
        }
        self.cursor = node;
        self.len += 1;
        self.stats.adds += 1;
        true
    }

    fn remove(&mut self, key: K) -> bool {
        let at = self.seek(key);
        if at == NIL || self.slot(at).key != key {
            self.cursor = if at == NIL { self.tail } else { at };
            return false;
        }
        let (prev, next) = {
            let s = self.slot(at);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.free.push(at);
        self.cursor = if next != NIL {
            next
        } else if prev != NIL {
            prev
        } else {
            NIL
        };
        self.len -= 1;
        self.stats.rems += 1;
        true
    }

    fn contains(&mut self, key: K) -> bool {
        // Same bidirectional cursor search, accounted under `cons`.
        let trav_before = self.stats.trav;
        let at = self.seek(key);
        self.stats.cons += self.stats.trav - trav_before;
        self.stats.trav = trav_before;
        if at != NIL {
            self.cursor = at;
            self.slot(at).key == key
        } else {
            self.cursor = self.tail;
            false
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn to_vec(&self) -> Vec<K> {
        self.iter().collect()
    }

    fn stats(&self) -> SeqStats {
        self.stats
    }
}

/// Iterator over a [`DoublySeqList`] in key order.
pub struct Iter<'a, K> {
    list: &'a DoublySeqList<K>,
    at: u32,
}

impl<'a, K: Copy> Iterator for Iter<'a, K> {
    type Item = K;
    fn next(&mut self) -> Option<K> {
        if self.at == NIL {
            return None;
        }
        let s = &self.list.slots[self.at as usize];
        self.at = s.next;
        Some(s.key)
    }
}

impl<K: Ord + Copy> FromIterator<K> for DoublySeqList<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut l = <Self as SeqOrderedSet<K>>::new();
        for k in iter {
            l.insert(k);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_unique_and_links_consistent() {
        let mut l: DoublySeqList<i64> = [5, 1, 3, 5, 2, 4, 1, 9, 0].into_iter().collect();
        assert_eq!(l.to_vec(), vec![0, 1, 2, 3, 4, 5, 9]);
        assert!(l.validate());
        assert!(l.remove(0));
        assert!(l.remove(9));
        assert!(l.remove(3));
        assert!(!l.remove(3));
        assert!(l.validate());
        assert_eq!(l.to_vec(), vec![1, 2, 4, 5]);
    }

    #[test]
    fn cursor_makes_ascending_and_descending_cheap() {
        let n = 5_000i64;
        let mut l = DoublySeqList::new();
        for k in 0..n {
            l.insert(k);
        }
        let up = l.stats().trav;
        assert!(up < 2 * n as u64, "ascending inserts should be O(1): {up}");

        let mut l = DoublySeqList::new();
        for k in (0..n).rev() {
            l.insert(k);
        }
        let down = l.stats().trav;
        assert!(
            down < 2 * n as u64,
            "descending inserts should be O(1): {down}"
        );
    }

    #[test]
    fn node_reuse_through_free_list() {
        let mut l = DoublySeqList::new();
        for round in 0..10 {
            for k in 0..100 {
                l.insert(k + round);
            }
            for k in 0..100 {
                l.remove(k + round);
            }
        }
        assert!(l.is_empty());
        assert!(
            l.slots.len() <= 101,
            "arena should reuse freed slots, grew to {}",
            l.slots.len()
        );
    }

    #[test]
    fn clear_resets() {
        let mut l: DoublySeqList<i64> = (0..50).collect();
        l.clear();
        assert!(l.is_empty());
        assert!(l.validate());
        assert!(l.insert(7));
        assert_eq!(l.to_vec(), vec![7]);
    }

    #[test]
    fn contains_counts_in_cons_not_trav() {
        let mut l: DoublySeqList<i64> = (0..100).collect();
        let s0 = l.stats();
        // Move the cursor far from the target first.
        assert!(l.contains(0));
        assert!(l.contains(99));
        let s1 = l.stats();
        assert!(s1.cons > s0.cons);
        assert_eq!(s1.trav, s0.trav);
    }

    #[test]
    fn matches_btreeset_on_random_tape() {
        use std::collections::BTreeSet;
        let mut l = DoublySeqList::<i64>::default();
        let mut oracle = BTreeSet::new();
        let mut x = 987654321u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 64) as i64;
            match (x >> 9) % 3 {
                0 => assert_eq!(l.insert(key), oracle.insert(key), "insert {key}"),
                1 => assert_eq!(l.remove(key), oracle.remove(&key), "remove {key}"),
                _ => assert_eq!(l.contains(key), oracle.contains(&key), "contains {key}"),
            }
        }
        assert!(l.validate());
        assert_eq!(l.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}
