//! Sorted singly linked list, safe `Box`-based implementation.
//!
//! The straightforward sequential counterpart of the lock-free list: the
//! same strictly-increasing key order, the same linear search, none of
//! the atomics. Used by the paper's thread-private benchmark mode to
//! estimate the system/memory overhead floor, and by the test-suite as a
//! semantics oracle.

use crate::{SeqOrderedSet, SeqStats};

struct Node<K> {
    key: K,
    next: Link<K>,
}

type Link<K> = Option<Box<Node<K>>>;

/// A sorted singly linked list with traversal accounting.
///
/// # Examples
///
/// ```
/// use seq_list::{SeqOrderedSet, SinglySeqList};
///
/// let mut l = SinglySeqList::new();
/// assert!(l.insert(2));
/// assert!(l.insert(1));
/// assert!(!l.insert(2));
/// assert_eq!(l.to_vec(), vec![1, 2]);
/// assert!(l.remove(1));
/// assert!(!l.contains(1));
/// ```
pub struct SinglySeqList<K> {
    head: Link<K>,
    len: usize,
    stats: SeqStats,
}

impl<K: Ord + Copy> Default for SinglySeqList<K> {
    fn default() -> Self {
        SeqOrderedSet::new()
    }
}

impl<K: Ord + Copy> SinglySeqList<K> {
    /// Iterates the keys in ascending order.
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            next: self.head.as_deref(),
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        // Iterative teardown: a naive recursive `Drop` of a long chain
        // overflows the stack.
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
        self.len = 0;
    }
}

impl<K> Drop for SinglySeqList<K> {
    fn drop(&mut self) {
        // Iterative teardown (see `clear`), valid for any `K`.
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

impl<K: Ord + Copy> SeqOrderedSet<K> for SinglySeqList<K> {
    fn new() -> Self {
        Self {
            head: None,
            len: 0,
            stats: SeqStats::default(),
        }
    }

    fn insert(&mut self, key: K) -> bool {
        let mut link = &mut self.head;
        loop {
            match link {
                Some(node) if node.key < key => {
                    self.stats.trav += 1;
                    link = &mut link.as_mut().unwrap().next;
                }
                Some(node) if node.key == key => return false,
                _ => {
                    let next = link.take();
                    *link = Some(Box::new(Node { key, next }));
                    self.len += 1;
                    self.stats.adds += 1;
                    return true;
                }
            }
        }
    }

    fn remove(&mut self, key: K) -> bool {
        let mut link = &mut self.head;
        loop {
            match link {
                Some(node) if node.key < key => {
                    self.stats.trav += 1;
                    link = &mut link.as_mut().unwrap().next;
                }
                Some(node) if node.key == key => {
                    let removed = link.take().unwrap();
                    *link = removed.next;
                    self.len -= 1;
                    self.stats.rems += 1;
                    return true;
                }
                _ => return false,
            }
        }
    }

    fn contains(&mut self, key: K) -> bool {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if node.key >= key {
                return node.key == key;
            }
            self.stats.cons += 1;
            cur = node.next.as_deref();
        }
        false
    }

    fn len(&self) -> usize {
        self.len
    }

    fn to_vec(&self) -> Vec<K> {
        self.iter().copied().collect()
    }

    fn stats(&self) -> SeqStats {
        self.stats
    }
}

/// Borrowing iterator over a [`SinglySeqList`] in key order.
pub struct Iter<'a, K> {
    next: Option<&'a Node<K>>,
}

impl<'a, K> Iterator for Iter<'a, K> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        let node = self.next?;
        self.next = node.next.as_deref();
        Some(&node.key)
    }
}

impl<K: Ord + Copy> FromIterator<K> for SinglySeqList<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut l = <Self as SeqOrderedSet<K>>::new();
        for k in iter {
            l.insert(k);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut l: SinglySeqList<i64> = [5, 1, 3, 5, 2, 4, 1].into_iter().collect();
        assert_eq!(l.to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(l.len(), 5);
        assert!(l.contains(3));
        assert!(!l.contains(6));
    }

    #[test]
    fn remove_head_middle_tail() {
        let mut l: SinglySeqList<i64> = (1..=5).collect();
        assert!(l.remove(1));
        assert!(l.remove(3));
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.to_vec(), vec![2, 4]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn empty_behaviour() {
        let mut l = SinglySeqList::<u32>::default();
        assert!(l.is_empty());
        assert!(!l.contains(1));
        assert!(!l.remove(1));
        assert!(l.to_vec().is_empty());
    }

    #[test]
    fn stats_count_traversals() {
        let mut l: SinglySeqList<i64> = (1..=100).collect();
        let before = l.stats();
        assert!(l.contains(100));
        let after = l.stats();
        assert_eq!(after.cons - before.cons, 99);
        assert_eq!(after.adds, 100);
    }

    #[test]
    fn long_list_drop_does_not_overflow_stack() {
        // Descending inserts land at the head in O(1), so building the
        // 200k-node chain is linear; the point of the test is the drop.
        let l: SinglySeqList<i64> = (0..200_000).rev().collect();
        assert_eq!(l.len(), 200_000);
        drop(l);
    }

    #[test]
    fn matches_btreeset_on_random_tape() {
        use std::collections::BTreeSet;
        let mut l = SinglySeqList::<i64>::default();
        let mut oracle = BTreeSet::new();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 50) as i64;
            match (x >> 7) % 3 {
                0 => assert_eq!(l.insert(key), oracle.insert(key)),
                1 => assert_eq!(l.remove(key), oracle.remove(&key)),
                _ => assert_eq!(l.contains(key), oracle.contains(&key)),
            }
            assert_eq!(l.len(), oracle.len());
        }
        assert_eq!(l.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}
