//! Criterion benches and repro binary (see benches/ and src/bin/).
