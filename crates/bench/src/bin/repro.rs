//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! Usage:
//!   repro list
//!   repro <experiment>... [options]
//!   repro all [options]
//!
//! Experiments: table1..table9, figure1..figure3, zipf, skew, batch,
//! drift, unrolled (see `repro list`).
//!
//! Options:
//!   --paper-scale         use the published parameters (large machines!)
//!   --threads N           override the worker thread count
//!   --n N                 override deterministic sequence length
//!   --ops N               override random-mix ops per thread
//!   --prefill N           override random-mix prefill
//!   --range N             override random-mix key range
//!   --repeats N           override sweep repeats
//!   --theta X             override the Zipfian skew (0 ≤ θ < 1)
//!   --batch-width N       override the batch experiment's keys per batch
//!   --scramble            spread the Zipfian hot set across the keyspace
//!                         (default: clustered, one bottleneck shard)
//!   --variants a,b,f      restrict the variant set (names, letters, or
//!                         groups: all/paper/sparc/figures/reclaim/sharded)
//!   --list-variants       print every variant key, paper label and
//!                         group membership, then exit
//!   --private             also run the thread-private sequential baseline
//!   --csv PATH            append machine-readable results to PATH
//!
//! Every experiment also writes `BENCH_<experiment>.json` (schema
//! `bench-rows/v1`) next to the CSV — or into the working directory —
//! so the performance trajectory is machine-tracked run over run.
//! ```

use std::process::ExitCode;

use bench_harness::presets::{Experiment, Scale, WorkloadSpec};
use bench_harness::report::{self, BenchJsonRow};
use bench_harness::{scalability, LatencySampled, PhasedLatencySampled, Variant};

struct Options {
    scale: Scale,
    threads: Option<usize>,
    n: Option<u64>,
    ops: Option<u64>,
    prefill: Option<u64>,
    range: Option<u32>,
    repeats: Option<usize>,
    theta: Option<f64>,
    scramble: bool,
    batch_width: Option<usize>,
    variants: Option<Vec<Variant>>,
    private_baseline: bool,
    csv: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Container,
            threads: None,
            n: None,
            ops: None,
            prefill: None,
            range: None,
            repeats: None,
            theta: None,
            scramble: false,
            batch_width: None,
            variants: None,
            private_baseline: false,
            csv: None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    if args[0] == "latency" {
        return run_latency(&args[1..]);
    }
    if args[0] == "list" {
        println!("Available experiments (container scale by default; --paper-scale for the published parameters):");
        for id in Experiment::IDS {
            let e = Experiment::get(id, Scale::Paper).unwrap();
            println!("  {:<9} {}", id, e.description);
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-variants") {
        println!("{:<24} {:<26} groups", "variant (CLI key)", "paper label");
        for v in Variant::ALL {
            println!(
                "{:<24} {:<26} {}",
                v.name(),
                v.paper_label(),
                v.groups().join(",")
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut ids: Vec<String> = Vec::new();
    let mut opt = Options::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper-scale" => opt.scale = Scale::Paper,
            "--private" => opt.private_baseline = true,
            "--threads" => opt.threads = parse_next(&mut it, "--threads"),
            "--n" => opt.n = parse_next(&mut it, "--n"),
            "--ops" => opt.ops = parse_next(&mut it, "--ops"),
            "--prefill" => opt.prefill = parse_next(&mut it, "--prefill"),
            "--range" => opt.range = parse_next(&mut it, "--range"),
            "--repeats" => opt.repeats = parse_next(&mut it, "--repeats"),
            "--theta" => {
                let theta: f64 = match parse_next(&mut it, "--theta") {
                    Some(t) => t,
                    None => return ExitCode::FAILURE,
                };
                if !(0.0..1.0).contains(&theta) {
                    eprintln!("--theta must be in [0, 1), got {theta}");
                    return ExitCode::FAILURE;
                }
                opt.theta = Some(theta);
            }
            "--scramble" => opt.scramble = true,
            "--batch-width" => opt.batch_width = parse_next(&mut it, "--batch-width"),
            "--csv" => opt.csv = it.next(),
            "--variants" => {
                let Some(list) = it.next() else {
                    eprintln!("--variants needs a comma-separated list");
                    return ExitCode::FAILURE;
                };
                let mut vs: Vec<Variant> = Vec::new();
                for part in list.split(',') {
                    match Variant::parse_group(part) {
                        // Order-preserving dedup: overlapping tokens
                        // (e.g. `paper,doubly_cursor`) must not run a
                        // variant twice.
                        Some(group) => {
                            for v in group {
                                if !vs.contains(&v) {
                                    vs.push(v);
                                }
                            }
                        }
                        None => {
                            eprintln!("unknown variant or group: {part}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                opt.variants = Some(vs);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = Experiment::IDS.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    for id in &ids {
        let Some(exp) = Experiment::get(id, opt.scale) else {
            eprintln!("unknown experiment {id} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        run_experiment(exp, &opt);
    }
    ExitCode::SUCCESS
}

/// `repro latency [--zipf] [--threads N] [--ops N] [--paper-scale]` —
/// per-op latency percentiles on the Table-3 mix. Not a paper
/// experiment: the paper reports throughput only, but §1's remark that
/// the structure is not starvation-free makes the tail the interesting
/// part. With `--zipf` the key stream is Zipfian (θ=0.99, clustered)
/// over the unrolled comparison set and the JSON id is `zipf_lat`.
fn run_latency(rest: &[String]) -> ExitCode {
    use bench_harness::config::{OpMix, RandomMixConfig};
    let mut threads = 4usize;
    let mut ops = 20_000u64;
    let mut zipf = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(threads),
            "--ops" => ops = it.next().and_then(|v| v.parse().ok()).unwrap_or(ops),
            "--zipf" => zipf = true,
            "--paper-scale" => {
                threads = 64;
                ops = 1_000_000;
            }
            other => {
                eprintln!("unknown latency option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if zipf {
        return run_latency_zipf(threads, ops);
    }
    let cfg = RandomMixConfig {
        threads,
        ops_per_thread: ops,
        prefill: 1_000,
        key_range: 10_000,
        mix: OpMix::READ_HEAVY,
        seed: 0x5eed_cafe,
    };
    println!(
        "per-operation latency (ns, log2-bucket upper bounds), mix 10/10/80, p={threads}, c={ops}, every 16th op sampled"
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "Variant", "p50", "p90", "p99", "p99.9", "max"
    );
    let workload = LatencySampled {
        cfg,
        sample_every: 16,
    };
    let mut json_rows = Vec::new();
    for v in Variant::PAPER.into_iter().chain([Variant::Epoch]) {
        let h = v.run(&workload);
        let (p50, p90, p99, p999, max) = h.summary();
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>12}",
            v.paper_label(),
            p50,
            p90,
            p99,
            p999,
            max
        );
        // Latency runs measure percentiles, not throughput: report the
        // real executed op count and a zero wall so time_ms/ops_per_sec
        // emit as 0.0 — the "not measured" marker — instead of numbers a
        // trajectory consumer could mistake for throughput.
        json_rows.push(BenchJsonRow {
            p50_ns: Some(p50),
            p99_ns: Some(p99),
            ..BenchJsonRow::plain(bench_harness::RunResult {
                variant: v.name().to_string(),
                wall: std::time::Duration::ZERO,
                total_ops: cfg.total_ops(),
                stats: bench_harness::OpStats::ZERO,
                threads,
            })
        });
    }
    write_bench_json(&Options::default(), "latency", &json_rows);
    ExitCode::SUCCESS
}

/// The `--zipf` arm of `repro latency`: skewed tail latency over the
/// unrolled comparison set (flat hinted baseline, skiplist, and the
/// fat-node variants), θ=0.99 clustered — the workload where in-node
/// binary search should collapse the hot prefix walk. Writes
/// `BENCH_zipf_lat.json` with p50/p99 filled.
fn run_latency_zipf(threads: usize, ops: u64) -> ExitCode {
    use bench_harness::config::OpMix;
    use bench_harness::ZipfianMixConfig;
    let cfg = ZipfianMixConfig {
        threads,
        ops_per_thread: ops,
        prefill: 1_000,
        key_range: 10_000,
        mix: OpMix::READ_HEAVY,
        seed: 0x5eed_cafe,
        theta: 0.99,
        scramble: false,
    };
    println!(
        "per-operation latency (ns, log2-bucket upper bounds), Zipfian θ=0.99 clustered, mix 10/10/80, p={threads}, c={ops}, every 16th op sampled"
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "Variant", "p50", "p90", "p99", "p99.9", "max"
    );
    let workload = bench_harness::ZipfLatencySampled {
        cfg,
        sample_every: 16,
    };
    let mut json_rows = Vec::new();
    for v in Variant::UNROLLED {
        let h = v.run(&workload);
        let (p50, p90, p99, p999, max) = h.summary();
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>12}",
            v.paper_label(),
            p50,
            p90,
            p99,
            p999,
            max
        );
        // Zero wall = "throughput not measured", as in the uniform arm.
        json_rows.push(BenchJsonRow {
            p50_ns: Some(p50),
            p99_ns: Some(p99),
            ..BenchJsonRow::at_theta(
                bench_harness::RunResult {
                    variant: v.name().to_string(),
                    wall: std::time::Duration::ZERO,
                    total_ops: cfg.total_ops(),
                    stats: bench_harness::OpStats::ZERO,
                    threads,
                },
                cfg.theta,
            )
        });
    }
    write_bench_json(&Options::default(), "zipf_lat", &json_rows);
    ExitCode::SUCCESS
}

fn parse_next<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Option<T> {
    match it.next().and_then(|v| v.parse().ok()) {
        Some(v) => Some(v),
        None => {
            eprintln!("{flag} needs a numeric argument");
            std::process::exit(2);
        }
    }
}

fn run_experiment(exp: Experiment, opt: &Options) {
    let variants = opt.variants.clone().unwrap_or_else(|| exp.variants.clone());
    println!("== {} — {}", exp.id, exp.description);
    let mut json_rows: Vec<BenchJsonRow> = Vec::new();
    match exp.workload {
        WorkloadSpec::Deterministic(mut cfg) => {
            if let Some(t) = opt.threads {
                cfg.threads = t;
            }
            if let Some(n) = opt.n {
                cfg.n = n;
            }
            println!(
                "   p={} n={} pattern={:?} ({} total ops per variant)",
                cfg.threads,
                cfg.n,
                cfg.pattern,
                cfg.total_ops()
            );
            let mut rows = Vec::new();
            for v in variants {
                let r = v.run(&cfg);
                println!(
                    "   {:<26} {:>10.1} ms  {:>12.1} Kops/s",
                    v.paper_label(),
                    r.time_ms(),
                    r.kops_per_sec()
                );
                rows.push(r);
            }
            json_rows.extend(rows.iter().cloned().map(BenchJsonRow::plain));
            println!("\n{}", report::format_table(exp.id, &rows));
            if opt.private_baseline {
                let s = bench_harness::private::run_private_singly(&cfg);
                let d = bench_harness::private::run_private_doubly(&cfg);
                println!(
                    "   thread-private baseline: seq_singly {:.1} Kops/s, seq_doubly {:.1} Kops/s\n",
                    s.kops_per_sec(),
                    d.kops_per_sec()
                );
            }
            append_csv(opt, &report::results_csv(&rows));
        }
        WorkloadSpec::RandomMix(mut cfg) => {
            if let Some(t) = opt.threads {
                cfg.threads = t;
            }
            if let Some(c) = opt.ops {
                cfg.ops_per_thread = c;
            }
            if let Some(f) = opt.prefill {
                cfg.prefill = f;
            }
            if let Some(u) = opt.range {
                cfg.key_range = u;
            }
            println!(
                "   p={} c={} f={} U={} mix={}/{}/{}",
                cfg.threads,
                cfg.ops_per_thread,
                cfg.prefill,
                cfg.key_range,
                cfg.mix.add,
                cfg.mix.remove,
                cfg.mix.contains
            );
            let mut rows = Vec::new();
            for v in variants {
                let r = v.run(&cfg);
                println!(
                    "   {:<26} {:>10.1} ms  {:>12.1} Kops/s",
                    v.paper_label(),
                    r.time_ms(),
                    r.kops_per_sec()
                );
                rows.push(r);
            }
            json_rows.extend(rows.iter().cloned().map(BenchJsonRow::plain));
            println!("\n{}", report::format_table(exp.id, &rows));
            append_csv(opt, &report::results_csv(&rows));
        }
        WorkloadSpec::ZipfianMix(mut cfg) => {
            apply_zipf_overrides(&mut cfg, opt);
            // The `zipf` experiment runs the morphing elastic pair only
            // in the write-heavy delegation pass below, so each variant
            // contributes exactly one row to BENCH_zipf.json.
            let delegated: Vec<Variant> = if exp.id == "zipf" {
                variants
                    .iter()
                    .copied()
                    .filter(|v| matches!(v, Variant::ElasticMorph | Variant::ElasticCombine))
                    .collect()
            } else {
                Vec::new()
            };
            let main_variants: Vec<Variant> = variants
                .iter()
                .copied()
                .filter(|v| !delegated.contains(v))
                .collect();
            println!(
                "   p={} c={} f={} U={} mix={}/{}/{} θ={} {}",
                cfg.threads,
                cfg.ops_per_thread,
                cfg.prefill,
                cfg.key_range,
                cfg.mix.add,
                cfg.mix.remove,
                cfg.mix.contains,
                cfg.theta,
                if cfg.scramble {
                    "scrambled"
                } else {
                    "clustered"
                }
            );
            let mut rows = Vec::new();
            for v in main_variants {
                let r = v.run(&cfg);
                println!(
                    "   {:<26} {:>10.1} ms  {:>12.1} Kops/s",
                    v.paper_label(),
                    r.time_ms(),
                    r.kops_per_sec()
                );
                rows.push(r);
            }
            json_rows.extend(
                rows.iter()
                    .cloned()
                    .map(|r| BenchJsonRow::at_theta(r, cfg.theta)),
            );
            if !rows.is_empty() {
                println!("\n{}", report::format_table(exp.id, &rows));
                append_csv(opt, &report::results_csv(&rows));
            }
            if !delegated.is_empty() {
                run_delegation_pass(&delegated, cfg, opt, &mut json_rows);
            }
        }
        WorkloadSpec::SkewSweep { mut base, thetas } => {
            apply_zipf_overrides(&mut base, opt);
            let thetas = match opt.theta {
                Some(t) => vec![t],
                None => thetas,
            };
            println!(
                "   skew sweep θ={thetas:?} p={} c={} f={} U={} {}",
                base.threads,
                base.ops_per_thread,
                base.prefill,
                base.key_range,
                if base.scramble {
                    "scrambled"
                } else {
                    "clustered"
                }
            );
            for theta in thetas {
                let cfg = bench_harness::ZipfianMixConfig { theta, ..base };
                let mut rows = Vec::new();
                for v in &variants {
                    let r = v.run(&cfg);
                    println!(
                        "   θ={theta:<5} {:<26} {:>10.1} ms  {:>12.1} Kops/s",
                        v.paper_label(),
                        r.time_ms(),
                        r.kops_per_sec()
                    );
                    rows.push(r);
                }
                json_rows.extend(
                    rows.iter()
                        .cloned()
                        .map(|r| BenchJsonRow::at_theta(r, theta)),
                );
                println!(
                    "\n{}",
                    report::format_table(&format!("{} θ={theta}", exp.id), &rows)
                );
                // The sweep's x-axis is θ, so prepend it as a CSV column
                // (the thread sweep gets its axis from the threads field).
                append_csv(opt, &csv_with_theta(theta, &report::results_csv(&rows)));
            }
        }
        WorkloadSpec::Sweep {
            mut base,
            threads,
            repeats,
        } => {
            if let Some(c) = opt.ops {
                base.ops_per_thread = c;
            }
            if let Some(f) = opt.prefill {
                base.prefill = f;
            }
            if let Some(u) = opt.range {
                base.key_range = u;
            }
            let threads = match opt.threads {
                Some(t) => vec![t],
                None => threads,
            };
            let repeats = opt.repeats.unwrap_or(repeats);
            println!(
                "   sweep threads={threads:?} repeats={repeats} c={} f={} U={}",
                base.ops_per_thread, base.prefill, base.key_range
            );
            let points = scalability::sweep(&base, &variants, &threads, repeats, |p| {
                println!(
                    "   {:<16} p={:<4} mean {:>10.1} Kops/s  [{:.1}, {:.1}]",
                    p.variant, p.threads, p.mean_kops, p.min_kops, p.max_kops
                );
            });
            json_rows.extend(points.iter().map(|p| {
                // Sweep points carry mean throughput only; counters and
                // wall time are per-repeat and not aggregated, so the
                // JSON row reports the figure series' y-value.
                BenchJsonRow::plain(bench_harness::RunResult {
                    variant: p.variant.clone(),
                    wall: std::time::Duration::from_secs(1),
                    total_ops: (p.mean_kops * 1000.0) as u64,
                    stats: bench_harness::OpStats::ZERO,
                    threads: p.threads,
                })
            }));
            println!("\n{}", report::scale_ascii(&points));
            append_csv(opt, &report::scale_csv(&points));
        }
        WorkloadSpec::Phased(mut cfg) => {
            if let Some(t) = opt.threads {
                cfg.threads = t;
            }
            if let Some(c) = opt.ops {
                for p in &mut cfg.phases {
                    p.ops_per_thread = c;
                }
            }
            if let Some(f) = opt.prefill {
                cfg.prefill = f;
            }
            if let Some(u) = opt.range {
                cfg.key_range = u;
            }
            if let Some(theta) = opt.theta {
                for p in &mut cfg.phases {
                    p.theta = theta;
                }
            }
            if opt.scramble {
                for p in &mut cfg.phases {
                    p.scramble = true;
                }
            }
            println!(
                "   p={} f={} U={} phases={} ({} total ops per variant)",
                cfg.threads,
                cfg.prefill,
                cfg.key_range,
                cfg.phases.len(),
                cfg.total_ops()
            );
            for (i, p) in cfg.phases.iter().enumerate() {
                println!(
                    "     phase {i}: hot={:.2} θ={:.2} mix={}/{}/{} c={}",
                    p.hotspot, p.theta, p.mix.add, p.mix.remove, p.mix.contains, p.ops_per_thread
                );
            }
            // Throughput pass (unsampled), then a latency pass with
            // every 16th op timed: probe overhead perturbs throughput,
            // so the two must not share a run. The percentiles fill the
            // p50_ns/p99_ns columns of BENCH_<id>.json, and the
            // per-phase histograms go to BENCH_<id>_lat.json — the view
            // where a phase whose hotspot lands on a sealing/morphing
            // shard shows the stall in its p99.
            let latency = PhasedLatencySampled {
                cfg: cfg.clone(),
                sample_every: 16,
            };
            let mut rows = Vec::new();
            let mut lat_rows: Vec<BenchJsonRow> = Vec::new();
            for v in variants {
                let r = v.run(&cfg);
                for (i, p) in r.phases.iter().enumerate() {
                    println!(
                        "   {:<26} phase {i}  {:>10.1} ms  {:>12.1} Kops/s",
                        v.paper_label(),
                        p.time_ms(),
                        p.kops_per_sec()
                    );
                }
                println!(
                    "   {:<26} TOTAL    {:>10.1} ms  {:>12.1} Kops/s",
                    v.paper_label(),
                    r.total.time_ms(),
                    r.total.kops_per_sec()
                );
                let lat = v.run(&latency);
                let (p50, _, p99, _, max) = lat.total.summary();
                println!(
                    "   {:<26} latency  p50 {p50} ns  p99 {p99} ns  max {max} ns",
                    v.paper_label()
                );
                // Zero wall = "throughput not measured" on latency rows,
                // as in `repro latency`; `<variant>@p<i>` rows carry the
                // per-phase tail, the plain row the whole-run aggregate.
                let lat_result = |name: String, ops: u64| bench_harness::RunResult {
                    variant: name,
                    wall: std::time::Duration::ZERO,
                    total_ops: ops,
                    stats: bench_harness::OpStats::ZERO,
                    threads: cfg.threads,
                };
                for (i, (h, p)) in lat.phases.iter().zip(cfg.phases.iter()).enumerate() {
                    lat_rows.push(BenchJsonRow {
                        p50_ns: Some(h.quantile_ns(0.5)),
                        p99_ns: Some(h.quantile_ns(0.99)),
                        ..BenchJsonRow::at_theta(
                            lat_result(
                                format!("{}@p{i}", v.name()),
                                p.ops_per_thread * cfg.threads as u64,
                            ),
                            p.theta,
                        )
                    });
                }
                lat_rows.push(BenchJsonRow {
                    p50_ns: Some(p50),
                    p99_ns: Some(p99),
                    ..BenchJsonRow::plain(lat_result(v.name().to_string(), cfg.total_ops()))
                });
                json_rows.push(BenchJsonRow {
                    p50_ns: Some(p50),
                    p99_ns: Some(p99),
                    ..BenchJsonRow::plain(r.total.clone())
                });
                rows.push(r.total);
            }
            println!("\n{}", report::format_table(exp.id, &rows));
            append_csv(opt, &report::results_csv(&rows));
            write_bench_json(opt, &format!("{}_lat", exp.id), &lat_rows);
        }
        WorkloadSpec::BatchMix(mut cfg) => {
            if let Some(t) = opt.threads {
                cfg.threads = t;
            }
            if let Some(c) = opt.ops {
                cfg.batches_per_thread = c;
            }
            if let Some(w) = opt.batch_width {
                cfg.batch_width = w;
            }
            if let Some(f) = opt.prefill {
                cfg.prefill = f;
            }
            if let Some(u) = opt.range {
                cfg.key_range = u;
            }
            println!(
                "   p={} batches={} width={} f={} U={} mix={}/{}/{} ({} keys per variant)",
                cfg.threads,
                cfg.batches_per_thread,
                cfg.batch_width,
                cfg.prefill,
                cfg.key_range,
                cfg.mix.add,
                cfg.mix.remove,
                cfg.mix.contains,
                cfg.total_ops()
            );
            let mut rows = Vec::new();
            for v in variants {
                let r = v.run(&cfg);
                println!(
                    "   {:<26} {:>10.1} ms  {:>12.1} Kkeys/s",
                    v.paper_label(),
                    r.time_ms(),
                    r.kops_per_sec()
                );
                rows.push(r);
            }
            json_rows.extend(rows.iter().cloned().map(BenchJsonRow::plain));
            println!("\n{}", report::format_table(exp.id, &rows));
            append_csv(opt, &report::results_csv(&rows));
        }
    }
    write_bench_json(opt, exp.id, &json_rows);
}

/// The `zipf` experiment's write-heavy delegation pass: the same
/// clustered θ but mix 40/40/20 over a hot range narrow enough that
/// splitting cannot dilute it — the contention case flat-combining
/// delegation exists for. Runs the morphing elastic pair head-to-head
/// (`elastic_morph` splits; `elastic_combine` delegates instead) and
/// appends its rows to the same `BENCH_zipf.json`.
fn run_delegation_pass(
    variants: &[Variant],
    base: bench_harness::ZipfianMixConfig,
    opt: &Options,
    json_rows: &mut Vec<BenchJsonRow>,
) {
    // The pass needs shard populations large enough that a migration is
    // a real rebuild: under the write-hot cluster the splitter oscillates
    // (split the hot shard, merge a cold pair, repeat — one bulk copy per
    // load window), which is exactly the churn delegation suppresses.
    // Scale the key range with the op budget (container scale: 320 k ops
    // → U = 2 M, half-full) so `--ops`-reduced smoke runs stay fast, and
    // cap it so `--threads`/`--ops` overrides cannot exhaust memory.
    let total_ops = base.ops_per_thread * base.threads as u64;
    let key_range = if opt.range.is_some() {
        base.key_range
    } else {
        ((total_ops * 25) / 4).clamp(2_000, 8_000_000) as u32
    };
    let cfg = bench_harness::ZipfianMixConfig {
        mix: bench_harness::OpMix::WRITE_HEAVY,
        key_range,
        prefill: u64::from(key_range) / 2,
        ..base
    };
    println!(
        "   delegation pass: p={} c={} f={} U={} mix={}/{}/{} θ={} clustered",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.prefill,
        cfg.key_range,
        cfg.mix.add,
        cfg.mix.remove,
        cfg.mix.contains,
        cfg.theta,
    );
    let mut rows = Vec::new();
    for v in variants {
        let r = v.run(&cfg);
        println!(
            "   {:<26} {:>10.1} ms  {:>12.1} Kops/s",
            v.paper_label(),
            r.time_ms(),
            r.kops_per_sec()
        );
        rows.push(r);
    }
    json_rows.extend(
        rows.iter()
            .cloned()
            .map(|r| BenchJsonRow::at_theta(r, cfg.theta)),
    );
    println!("\n{}", report::format_table("zipf (delegation)", &rows));
    append_csv(opt, &report::results_csv(&rows));
}

/// Writes the machine-readable `BENCH_<experiment>.json` next to the CSV
/// (same directory as `--csv`, or the working directory), so the perf
/// trajectory is tracked per experiment from every run.
fn write_bench_json(opt: &Options, id: &str, rows: &[BenchJsonRow]) {
    let doc = report::bench_json(id, rows);
    debug_assert!(report::validate_bench_json(&doc).is_ok());
    let dir = opt
        .csv
        .as_ref()
        .and_then(|p| {
            std::path::Path::new(p)
                .parent()
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_default();
    let path = dir.join(format!("BENCH_{id}.json"));
    match std::fs::write(&path, doc) {
        Ok(()) => println!("   (bench json written to {})", path.display()),
        Err(e) => eprintln!("   cannot write {}: {e}", path.display()),
    }
}

fn apply_zipf_overrides(cfg: &mut bench_harness::ZipfianMixConfig, opt: &Options) {
    if let Some(t) = opt.threads {
        cfg.threads = t;
    }
    if let Some(c) = opt.ops {
        cfg.ops_per_thread = c;
    }
    if let Some(f) = opt.prefill {
        cfg.prefill = f;
    }
    if let Some(u) = opt.range {
        cfg.key_range = u;
    }
    if let Some(theta) = opt.theta {
        cfg.theta = theta;
    }
    if opt.scramble {
        cfg.scramble = true;
    }
}

/// Prefixes a `theta` column onto a `results_csv` block so skew-sweep
/// output stays analyzable by its x-axis.
fn csv_with_theta(theta: f64, csv: &str) -> String {
    let mut out = String::new();
    for line in csv.lines() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with("variant,") {
            out.push_str("theta,");
        } else {
            out.push_str(&format!("{theta},"));
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn append_csv(opt: &Options, data: &str) {
    if let Some(path) = &opt.csv {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        f.write_all(data.as_bytes()).expect("csv write failed");
        println!("   (csv appended to {path})");
    }
}

fn print_usage() {
    println!(
        "repro — regenerate the paper's tables and figures\n\
         \n\
         usage: repro list | repro <experiment>... [options] | repro all [options] | repro latency [--zipf]\n\
         \n\
         options: --paper-scale --threads N --n N --ops N --prefill N --range N\n\
         \x20         --repeats N --theta X --scramble --batch-width N --variants a,b,f\n\
         \x20         --list-variants --private --csv PATH (BENCH_<exp>.json is written beside it)\n\
         \n\
         Container-scale parameters are the default; pass --paper-scale on a\n\
         large machine for the published sizes."
    );
}
