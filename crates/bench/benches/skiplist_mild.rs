//! Extension bench: the paper's §4 proposal applied — mild retry
//! improvements inside a lock-free *skiplist*, per level, versus the
//! textbook skiplist that restarts the whole multi-level search on any
//! failed unlink CAS. Also puts the flat doubly-cursor list next to the
//! skiplist to show where the crossover lies: the list wins on locality
//! (cursor), the skiplist on uniform random access (log n).

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::random_mix;
use criterion::{criterion_group, criterion_main, Criterion};
use lockfree_skiplist::{DraconicSkipList, SkipListSet};
use pragmatic_list::variants::DoublyCursorList;

fn bench(c: &mut Criterion) {
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 4_096,
        key_range: 8_192,
        mix: OpMix::UPDATE_HEAVY,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("extension_skiplist_mild");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    g.bench_function("skiplist_draconic", |b| {
        b.iter(|| std::hint::black_box(random_mix::run::<DraconicSkipList<i64>>(&cfg)))
    });
    g.bench_function("skiplist_mild", |b| {
        b.iter(|| std::hint::black_box(random_mix::run::<SkipListSet<i64>>(&cfg)))
    });
    g.bench_function("doubly_cursor_list", |b| {
        b.iter(|| std::hint::black_box(random_mix::run::<DoublyCursorList<i64>>(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
