//! Ablation A5: the hot-path matrix — hint count × batch width × skew.
//!
//! PR "hot-path overhaul" introduced three constant-factor levers on top
//! of the paper's variants: per-thread search hints (a multi-position
//! cursor), slab node storage with prefetching (always on — its effect
//! is visible as the uplift of every `hints0` row over the pre-PR
//! baselines recorded in `BENCH_pre_pr4_baseline.json`), and batched
//! sorted operations. This sweep isolates the two tunable axes:
//!
//! * **hint count** — 0 (the plain cursor variant d), 2, and 8 slots,
//!   under uniform (θ=0) and heavily skewed (θ=0.99) Zipfian mixes.
//!   Uniform traversals are long, so every extra hint is another finger
//!   into the list; clustered skew keeps traversals short and shows the
//!   selection overhead staying negligible.
//! * **batch width** — 1, 8, 64 keys per batch through the sorted
//!   single-traversal `add_batch`/`remove_batch` path, total key count
//!   held constant, on the cursor and hinted lists.
//!
//! Set `ABLATION_SMOKE=1` to shrink the workloads for CI smoke runs.

use bench_harness::batch::BatchMixConfig;
use bench_harness::zipfian::ZipfianMixConfig;
use bench_harness::{OpMix, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use pragmatic_list::reclaim::ArenaReclaim;
use pragmatic_list::singly::SinglyList;

/// Variant d) with a compile-time hint count.
type Hinted<const H: usize> = SinglyList<i64, true, true, false, ArenaReclaim, H>;

fn ops(default: u64) -> u64 {
    if std::env::var_os("ABLATION_SMOKE").is_some() {
        (default / 20).max(200)
    } else {
        default
    }
}

fn bench(c: &mut Criterion) {
    let zipf_base = ZipfianMixConfig {
        threads: 2,
        ops_per_thread: ops(20_000),
        prefill: 1_000,
        key_range: 10_000,
        mix: OpMix::READ_HEAVY,
        seed: 0x5eed_cafe,
        theta: 0.0,
        scramble: false,
    };
    for theta in [0.0, 0.99] {
        let cfg = ZipfianMixConfig { theta, ..zipf_base };
        let mut g = c.benchmark_group(&format!("ablation_a5_hints_theta{theta}"));
        g.sample_size(10);
        g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
        g.bench_function("hints0", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Hinted<0>>()))
        });
        g.bench_function("hints2", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Hinted<2>>()))
        });
        g.bench_function("hints8", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Hinted<8>>()))
        });
        g.finish();
    }

    // Batch-width axis: constant total keys, varying amortization.
    let total_keys = ops(64_000);
    for width in [1usize, 8, 64] {
        let cfg = BatchMixConfig {
            threads: 2,
            batches_per_thread: (total_keys / width as u64).max(1),
            batch_width: width,
            prefill: 1_000,
            key_range: 10_000,
            mix: OpMix::UPDATE_HEAVY,
            seed: 0x5eed_cafe,
        };
        let mut g = c.benchmark_group(&format!("ablation_a5_batch_w{width}"));
        g.sample_size(10);
        g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
        g.bench_function("singly_cursor", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Hinted<0>>()))
        });
        g.bench_function("singly_hint", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Hinted<8>>()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
