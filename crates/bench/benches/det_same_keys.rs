//! Criterion bench for Tables 1 / 4 / 7: deterministic benchmark with the
//! same key sequence `k(i) = i` for every thread (maximum interaction).
//!
//! Container-scale parameters; the `repro` binary runs the published
//! sizes. Expected shape (Table 1): f ≫ e ≈ d ≫ c ≈ b ≳ a.

use bench_harness::config::{DeterministicConfig, KeyPattern};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = DeterministicConfig {
        threads: 4,
        n: 400,
        pattern: KeyPattern::SameKeys,
    };
    let mut g = c.benchmark_group("table1_det_same_keys");
    g.sample_size(10);
    for v in Variant::PAPER {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
