//! Ablation A2: what does *real* memory reclamation cost?
//!
//! The paper's lists free nodes only after the experiment (arena
//! scheme); `EpochList` is the same textbook algorithm with
//! crossbeam-epoch reclamation (pin per operation, retire on unlink).
//! Comparing `draconic` (arena) with `epoch` on the update-heavy random
//! mix isolates the reclamation overhead the paper declines to pay —
//! context for its §4 remark that the improvements "do not comprise the
//! chosen memory reclamation scheme".

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 512,
        key_range: 1_024,
        mix: OpMix::UPDATE_HEAVY,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("ablation_a2_reclamation");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    for v in [Variant::Draconic, Variant::Epoch] {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
