//! Ablation A2: what does *real* memory reclamation cost?
//!
//! The paper's lists free nodes only after the experiment (the arena
//! scheme, [`ArenaReclaim`]); the same list code instantiated with
//! epoch-based or hazard-pointer reclamation pays the price the paper
//! declines to pay — context for its §4 remark that the improvements
//! "do not comprise the chosen memory reclamation scheme".
//!
//! The sweep is the variant × reclaimer cross-product from
//! `Variant::RECLAIM`: each arena variant runs next to its epoch (and,
//! for variant b, hazard-pointer) counterpart on the update-heavy random
//! mix, so adjacent rows isolate the reclamation overhead per variant —
//! pin/unpin per operation for epoch, a protect-and-fence per traversal
//! step for hazard pointers, plus the loss of cross-operation cursors
//! and backward walks.
//!
//! [`ArenaReclaim`]: pragmatic_list::reclaim::ArenaReclaim

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 512,
        key_range: 1_024,
        mix: OpMix::UPDATE_HEAVY,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("ablation_a2_reclamation");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    for v in Variant::RECLAIM {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
