//! Ablation A1: decompose variant f)'s win — cursor alone, mild
//! improvements alone, backward pointers alone, and their combinations,
//! on the locality-friendly deterministic workload.
//!
//! DESIGN.md question: how much of the deterministic-benchmark speedup
//! comes from the cursor versus the backward pointers? The paper only
//! reports the composed variants; this bench separates them:
//!
//! * `singly` (mild only), `cursor_only` (cursor, draconic retries),
//! * `singly_cursor` (mild + cursor),
//! * `doubly` (backward pointers, head starts),
//! * `doubly_cursor` (backward pointers + cursor).

use bench_harness::config::{DeterministicConfig, KeyPattern};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = DeterministicConfig {
        threads: 4,
        n: 400,
        pattern: KeyPattern::SameKeys,
    };
    let mut g = c.benchmark_group("ablation_a1_cursor_decomposition");
    g.sample_size(10);
    for v in [
        Variant::Singly,
        Variant::CursorOnly,
        Variant::SinglyCursor,
        Variant::Doubly,
        Variant::DoublyCursor,
    ] {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
