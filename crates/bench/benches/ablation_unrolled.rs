//! Ablation A6: the unrolled fat-node list — node capacity × skew.
//!
//! The unrolled subsystem trades pointer chases for in-node binary
//! search over an immutable sorted run of up to `CAP` keys. The right
//! `CAP` is a bet on the workload: larger nodes shorten the link walk
//! (fewer next-pointer hops per traversal, better cache-line economy)
//! but raise the cost of every mutation, which must republish a whole
//! run image and splits a node at the median once it fills. This sweep
//! isolates that axis:
//!
//! * **node capacity** — CAP ∈ {4, 8, 16, 32} with 8 search hints,
//!   under uniform (θ=0) and heavily skewed (θ=0.99) clustered Zipfian
//!   mixes. Uniform traffic pays the full walk, so capacity is a pure
//!   traversal-length lever; clustered skew concentrates on a short hot
//!   prefix where republish contention on the hot node dominates.
//! * **baseline** — the flat hinted list (`singly_hint`, the strongest
//!   one-key-per-node variant) at the same hint count, so each group
//!   reads as a speedup ratio over the best flat configuration.
//!
//! Set `ABLATION_SMOKE=1` to shrink the workloads for CI smoke runs.

use bench_harness::zipfian::ZipfianMixConfig;
use bench_harness::{OpMix, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use pragmatic_list::reclaim::ArenaReclaim;
use pragmatic_list::singly::SinglyList;
use pragmatic_list::unrolled::UnrolledList;

/// The fat-node list with a compile-time capacity and 8 search hints.
type Fat<const CAP: usize> = UnrolledList<i64, CAP, ArenaReclaim, 8>;
/// The flat hinted baseline (variant `singly_hint`).
type FlatHinted = SinglyList<i64, true, true, false, ArenaReclaim, 8>;

fn ops(default: u64) -> u64 {
    if std::env::var_os("ABLATION_SMOKE").is_some() {
        (default / 20).max(200)
    } else {
        default
    }
}

fn bench(c: &mut Criterion) {
    let base = ZipfianMixConfig {
        threads: 2,
        ops_per_thread: ops(20_000),
        prefill: 1_000,
        key_range: 10_000,
        mix: OpMix::READ_HEAVY,
        seed: 0x5eed_cafe,
        theta: 0.0,
        scramble: false,
    };
    for theta in [0.0, 0.99] {
        let cfg = ZipfianMixConfig { theta, ..base };
        let mut g = c.benchmark_group(&format!("ablation_a6_cap_theta{theta}"));
        g.sample_size(10);
        g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
        g.bench_function("flat_hint8", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<FlatHinted>()))
        });
        g.bench_function("cap4", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Fat<4>>()))
        });
        g.bench_function("cap8", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Fat<8>>()))
        });
        g.bench_function("cap16", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Fat<16>>()))
        });
        g.bench_function("cap32", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Fat<32>>()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
