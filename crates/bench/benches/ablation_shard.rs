//! Ablation A4: the shard-count × skew matrix.
//!
//! The paper's lists trade asymptotics for constant factors, which caps
//! a single structure's scalability; range-partitioning restores it by
//! keeping every shard in the short-list sweet spot. This sweep
//! quantifies the two axes that matter:
//!
//! * **shard count** — 1 (the flat baseline) through 32, for both the
//!   singly-cursor list and the mild skiplist backends;
//! * **skew** — uniform (θ=0) versus heavy Zipfian skew (θ=0.99), in
//!   both placements: *clustered* (hot ranks adjacent, so one shard is
//!   the bottleneck link — sharding helps least) and *scrambled* (hot
//!   keys spread across shards — sharding helps most).
//!
//! The interesting read-out is how much of the uniform-workload sharding
//! win survives clustered skew: the hot shard serializes the hot keys
//! again, exactly like traffic re-concentrating on a bottleneck after a
//! road-network expansion.

use bench_harness::zipfian::ZipfianMixConfig;
use bench_harness::{OpMix, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use lockfree_skiplist::SkipListSet;
use pragmatic_list::sharded::ShardedSet;
use pragmatic_list::variants::SinglyCursorList;

type List = SinglyCursorList<i64>;
type Skip = SkipListSet<i64>;

fn bench(c: &mut Criterion) {
    let base = ZipfianMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 1_000,
        key_range: 10_000,
        mix: OpMix::READ_HEAVY,
        seed: 0x5eed_cafe,
        theta: 0.0,
        scramble: false,
    };
    for (theta, scramble) in [(0.0, false), (0.99, false), (0.99, true)] {
        let cfg = ZipfianMixConfig {
            theta,
            scramble,
            ..base
        };
        let label = format!(
            "ablation_a4_shard_theta{theta}_{}",
            if scramble { "scrambled" } else { "clustered" }
        );
        let mut g = c.benchmark_group(&label);
        g.sample_size(10);
        g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
        g.bench_function("singly_n1", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<List>()))
        });
        g.bench_function("singly_n4", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, List, 4>>()))
        });
        g.bench_function("singly_n8", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, List, 8>>()))
        });
        g.bench_function("singly_n16", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, List, 16>>()))
        });
        g.bench_function("singly_n32", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, List, 32>>()))
        });
        g.bench_function("skiplist_n1", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<Skip>()))
        });
        g.bench_function("skiplist_n8", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, Skip, 8>>()))
        });
        g.bench_function("skiplist_n32", |b| {
            b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, Skip, 32>>()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
