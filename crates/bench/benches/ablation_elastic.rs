//! Ablation A6: elastic resharding under a drifting hotspot.
//!
//! The static shard sweep (A4) showed clustered skew re-serializing the
//! hot keys on one shard; this sweep adds the time axis — the hotspot
//! *moves* — and measures what load-aware resharding buys over every
//! fixed partition:
//!
//! * **static baselines** — the flat singly-cursor list and its 8/32-way
//!   fixed partitions on the same phased drift;
//! * **elastic, default policy** — starts at the static small
//!   configuration (8 shards) and re-splits around the hotspot as it
//!   marches;
//! * **policy levers** — an eager monitor (short windows, low split
//!   share), a capped table (`max_shards = 16`), and a merge-happy
//!   configuration, isolating how reaction speed, table size and
//!   reclamation of cold shards shape the win.
//!
//! Set `ABLATION_SMOKE=1` to shrink the workloads for CI smoke runs.

use bench_harness::phased::{run_prebuilt, Phase, PhasedConfig};
use bench_harness::{OpMix, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
use pragmatic_list::sharded::ShardedSet;
use pragmatic_list::variants::SinglyCursorList;

type List = SinglyCursorList<i64>;
type Elastic = ElasticSet<i64, List>;

fn ops(default: u64) -> u64 {
    if std::env::var_os("ABLATION_SMOKE").is_some() {
        (default / 20).max(200)
    } else {
        default
    }
}

fn drift(threads: usize, c: u64) -> PhasedConfig {
    let ph = |hotspot: f64, theta: f64, mix: OpMix| Phase {
        ops_per_thread: c,
        mix,
        theta,
        hotspot,
        scramble: false,
    };
    PhasedConfig {
        threads,
        prefill: 4_000,
        key_range: 10_000,
        seed: 0x5eed_cafe,
        phases: vec![
            ph(0.00, 0.9, OpMix::READ_HEAVY),
            ph(0.20, 0.9, OpMix::READ_HEAVY),
            ph(0.40, 0.9, OpMix::UPDATE_HEAVY),
            ph(0.60, 0.9, OpMix::READ_HEAVY),
            ph(0.80, 0.9, OpMix::READ_HEAVY),
        ],
    }
}

fn bench(c: &mut Criterion) {
    let cfg = drift(4, ops(8_000));
    let mut g = c.benchmark_group("ablation_a6_elastic_drift");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    g.bench_function("static_n1", |b| {
        b.iter(|| std::hint::black_box(cfg.run::<List>().total))
    });
    g.bench_function("static_n8", |b| {
        b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, List, 8>>().total))
    });
    g.bench_function("static_n32", |b| {
        b.iter(|| std::hint::black_box(cfg.run::<ShardedSet<i64, List, 32>>().total))
    });
    g.bench_function("elastic_default", |b| {
        b.iter(|| std::hint::black_box(cfg.run::<Elastic>().total))
    });
    g.bench_function("elastic_eager", |b| {
        b.iter(|| {
            let set = Elastic::with_policy(LoadPolicy {
                check_period: 128,
                window_min_ops: 512,
                split_share_pct: 15,
                ..LoadPolicy::default()
            });
            std::hint::black_box(run_prebuilt(&set, &cfg).total)
        })
    });
    g.bench_function("elastic_capped16", |b| {
        b.iter(|| {
            let set = Elastic::with_policy(LoadPolicy {
                max_shards: 16,
                ..LoadPolicy::default()
            });
            std::hint::black_box(run_prebuilt(&set, &cfg).total)
        })
    });
    g.bench_function("elastic_merge_happy", |b| {
        b.iter(|| {
            let set = Elastic::with_policy(LoadPolicy {
                merge_share_pct: 6,
                ..LoadPolicy::default()
            });
            std::hint::black_box(run_prebuilt(&set, &cfg).total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
