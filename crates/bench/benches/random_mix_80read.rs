//! Criterion bench for Tables 3 / 6 / 9: the random operation-mix
//! benchmark, 10% add / 10% rem / 80% con, f=1000, U=10000.
//!
//! Expected shape (Table 3): f > d ≈ e > a ≈ b ≈ c.

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 1_000,
        key_range: 10_000,
        mix: OpMix::READ_HEAVY,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("table3_random_mix_80read");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    for v in Variant::PAPER {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
