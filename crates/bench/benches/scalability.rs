//! Criterion bench for Figures 1 / 2 / 3: weak-scaling random mix,
//! 25% add / 25% rem / 50% con, thread counts on the x-axis.
//!
//! Each (variant × threads) cell is one Criterion benchmark; the
//! `repro figure1..3` commands produce the paper-style mean-of-5 CSV
//! series instead.

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let base = RandomMixConfig {
        threads: 1,
        ops_per_thread: 2_000,
        prefill: 2_048,
        key_range: 4_096,
        mix: OpMix::UPDATE_HEAVY,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("figures_scalability");
    g.sample_size(10);
    for v in Variant::FIGURES {
        for threads in [1usize, 2, 4, 8] {
            let cfg = RandomMixConfig { threads, ..base };
            g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
            g.bench_with_input(BenchmarkId::new(v.name(), threads), &cfg, |b, cfg| {
                b.iter(|| std::hint::black_box(v.run(cfg)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
