//! Ablation A3: the conditional repair-on-traverse of backward pointers.
//!
//! Listing 3 repairs a stale `prev` during forward traversal, guarded by
//! a relaxed-load comparison ("since updates with atomic stores are
//! expensive due to cache coherence activity, we only update a pointer
//! if a test shows that a pointer is not correct"). This bench runs
//! variant f) with and without that repair on a churn-heavy random mix,
//! where un-repaired backward pointers degrade and backward walks
//! lengthen.

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::random_mix;
use criterion::{criterion_group, criterion_main, Criterion};
use pragmatic_list::variants::{DoublyCursorList, DoublyCursorNoRepairList};

fn bench(c: &mut Criterion) {
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 1_024,
        key_range: 2_048,
        mix: OpMix::UPDATE_HEAVY,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("ablation_a3_backptr_repair");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    g.bench_function("doubly_cursor_repair_on", |b| {
        b.iter(|| std::hint::black_box(random_mix::run::<DoublyCursorList<i64>>(&cfg)))
    });
    g.bench_function("doubly_cursor_repair_off", |b| {
        b.iter(|| std::hint::black_box(random_mix::run::<DoublyCursorNoRepairList<i64>>(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
