//! Ablation A4: fetch-or versus CAS-loop delete marking.
//!
//! The paper's §4: "The (emulated) atomic fetch-and-or operation as
//! expected brings no improvement over the corresponding improved singly
//! linked list with cursor." This bench compares d) and e) on a
//! remove-heavy mix, where marking frequency is maximal, to reproduce
//! that non-result (on x86-64, `fetch_or` with a used result compiles to
//! a CAS loop anyway — the paper's point about the ISA).

use bench_harness::config::{OpMix, RandomMixConfig};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let remove_heavy = OpMix {
        add: 45,
        remove: 45,
        contains: 10,
    };
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 10_000,
        prefill: 512,
        key_range: 1_024,
        mix: remove_heavy,
        seed: 0x5eed_cafe,
    };
    let mut g = c.benchmark_group("ablation_a4_fetch_or");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(cfg.total_ops()));
    for v in [Variant::SinglyCursor, Variant::SinglyFetchOr] {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
