//! Criterion bench for Tables 2 / 5 / 8: deterministic benchmark with
//! per-thread disjoint key sequences `k(i) = t + i·p` (long list, no key
//! contention, heavy traversal).
//!
//! Expected shape (Table 2): f ≫ d ≈ e ≫ b ≈ c ≳ a.

use bench_harness::config::{DeterministicConfig, KeyPattern};
use bench_harness::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = DeterministicConfig {
        threads: 4,
        n: 300,
        pattern: KeyPattern::DisjointKeys,
    };
    let mut g = c.benchmark_group("table2_det_disjoint_keys");
    g.sample_size(10);
    for v in Variant::PAPER {
        g.bench_function(v.name(), |b| b.iter(|| std::hint::black_box(v.run(&cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
