//! # glibc-rand
//!
//! A from-scratch reimplementation of glibc's reentrant `random_r()`
//! generator (the TYPE_3 trinomial additive-feedback generator, degree 31,
//! separation 3) plus the benchmark-facing distributions built on it.
//!
//! ## Why this exists
//!
//! The paper's random operation-mix benchmark draws keys and operations
//! "uniformly at random […] we use the thread-safe `random_r()` generator"
//! with a distinct seed per thread (§3). Reproducing the workload
//! therefore needs the same generator family: one reentrant state per
//! thread, glibc semantics. Rather than linking libc (whose `random_r`
//! is a GNU extension, absent on the paper's SPARC/Solaris machine —
//! the reason variant e) is missing from Tables 7–9), we reimplement the
//! algorithm and pin it with glibc's known output vectors.
//!
//! ## Algorithm
//!
//! State is 31 `i32` lags. Seeding (glibc `srandom_r`):
//!
//! ```text
//! r[0] = seed (0 is replaced by 1)
//! r[i] = 16807 * r[i-1] mod 2147483647   for i in 1..31   (Schrage)
//! ```
//!
//! then the generator runs `10 * 31` warm-up steps. Each step is
//! `r[f] += r[r_]` on wrapping `i32`s with the two taps advancing
//! cyclically 3 apart; the output is `(r[f] as u32) >> 1`, a value in
//! `[0, 2^31)` — bit-exact with glibc's `random()`/`random_r()`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

const DEG: usize = 31;
const SEP: usize = 3;
/// Modulus of the seeding LCG (2^31 - 1).
const LCG_M: i64 = 2_147_483_647;
/// Multiplier of the seeding LCG (Park–Miller).
const LCG_A: i64 = 16_807;

/// Reentrant glibc-compatible pseudo-random generator (TYPE_3).
///
/// # Examples
///
/// Bit-exact with glibc's `srandom(1); random()`:
///
/// ```
/// use glibc_rand::GlibcRandom;
///
/// let mut r = GlibcRandom::new(1);
/// assert_eq!(r.next_i31(), 1804289383);
/// assert_eq!(r.next_i31(), 846930886);
/// ```
#[derive(Debug, Clone)]
pub struct GlibcRandom {
    table: [i32; DEG],
    /// Front tap index (glibc `fptr`).
    f: usize,
    /// Rear tap index (glibc `rptr`).
    r: usize,
}

impl GlibcRandom {
    /// Creates a generator seeded like glibc `srandom_r(seed)`.
    pub fn new(seed: u32) -> Self {
        let seed = if seed == 0 { 1 } else { seed };
        let mut table = [0i32; DEG];
        table[0] = seed as i32;
        for i in 1..DEG {
            // glibc computes the Park–Miller LCG in 64-bit here; keep the
            // exact semantics including the negative-wrap adjustment.
            let mut word = (LCG_A * (table[i - 1] as i64)) % LCG_M;
            if word < 0 {
                word += LCG_M;
            }
            table[i] = word as i32;
        }
        let mut gen = Self {
            table,
            f: SEP,
            r: 0,
        };
        for _ in 0..(DEG * 10) {
            gen.next_i31();
        }
        gen
    }

    /// One raw generator step: a uniform value in `[0, 2^31)`, identical
    /// to glibc `random()` for the same seed.
    #[inline]
    pub fn next_i31(&mut self) -> i32 {
        let sum = self.table[self.f].wrapping_add(self.table[self.r]);
        self.table[self.f] = sum;
        let out = ((sum as u32) >> 1) as i32;
        self.f += 1;
        if self.f >= DEG {
            self.f = 0;
        }
        self.r += 1;
        if self.r >= DEG {
            self.r = 0;
        }
        out
    }

    /// Uniform value in `[0, bound)` via the modulo reduction the paper's
    /// C benchmark uses (`random_r() % U`). `bound` must be positive.
    ///
    /// The slight modulo bias is intentional: it reproduces the C
    /// workload's key distribution exactly.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.next_i31() as u32) % bound
    }

    /// Uniform `f64` in `[0, 1)` (31 bits of precision; used for the
    /// operation-mix draw).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.next_i31() as f64 / (1u64 << 31) as f64
    }
}

/// Derives per-thread seeds the way the benchmark drivers do: a shared
/// base seed mixed with the thread id, kept within `u32` and never zero.
///
/// The mixing constant is the 32-bit golden-ratio multiplier, so nearby
/// thread ids yield unrelated lag tables.
pub fn thread_seed(base: u64, thread: usize) -> u32 {
    let mixed = base
        .wrapping_add((thread as u64 + 1).wrapping_mul(0x9E37_79B9))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let s = (mixed >> 32) as u32 ^ (mixed as u32);
    if s == 0 {
        1
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First ten outputs of glibc `srandom(1); random()` — the canonical
    /// sequence (also what C `rand()` yields on glibc).
    const GLIBC_SEED1: [i32; 10] = [
        1804289383, 846930886, 1681692777, 1714636915, 1957747793, 424238335, 719885386,
        1649760492, 596516649, 1189641421,
    ];

    #[test]
    fn bit_exact_with_glibc_seed_1() {
        let mut r = GlibcRandom::new(1);
        for (i, &want) in GLIBC_SEED1.iter().enumerate() {
            assert_eq!(r.next_i31(), want, "output #{i}");
        }
    }

    #[test]
    fn seed_zero_is_seed_one() {
        let mut a = GlibcRandom::new(0);
        let mut b = GlibcRandom::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_i31(), b.next_i31());
        }
    }

    #[test]
    fn outputs_are_31_bit() {
        let mut r = GlibcRandom::new(7);
        for _ in 0..10_000 {
            let v = r.next_i31();
            assert!(v >= 0);
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = GlibcRandom::new(3);
        let bound = 97u32;
        let mut seen = vec![false; bound as usize];
        for _ in 0..20_000 {
            let v = r.below(bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = GlibcRandom::new(9);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = GlibcRandom::new(1);
        let mut b = GlibcRandom::new(2);
        let same = (0..100).filter(|_| a.next_i31() == b.next_i31()).count();
        assert!(same < 5);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = GlibcRandom::new(77);
        for _ in 0..10 {
            a.next_i31();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_i31(), b.next_i31());
        }
    }

    #[test]
    fn thread_seed_is_nonzero_and_spread() {
        use std::collections::HashSet;
        let seeds: HashSet<u32> = (0..1000).map(|t| thread_seed(0xDEADBEEF, t)).collect();
        assert_eq!(seeds.len(), 1000, "seeds must be unique across threads");
        assert!(!seeds.contains(&0));
    }

    #[test]
    fn uniformity_chi_square_smoke() {
        // 16 buckets, 64k draws: chi-square with 15 dof, loose bound.
        let mut r = GlibcRandom::new(123);
        let mut buckets = [0u32; 16];
        let n = 65536;
        for _ in 0..n {
            buckets[r.below(16) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 50.0, "chi-square too large: {chi2}");
    }
}

/// The five generator types of glibc's `initstate`/`random` family.
///
/// glibc selects the type from the state-buffer size handed to
/// `initstate_r` (8 → TYPE_0, 32 → TYPE_1, 64 → TYPE_2, 128 → TYPE_3,
/// 256 → TYPE_4 bytes). [`GlibcRandom`] is the 128-byte default
/// (TYPE_3); [`GlibcRandomAny`] exposes the rest, completing the
/// substrate for workloads that pin a different state size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorType {
    /// Pure LCG (`x' = x·1103515245 + 12345 mod 2^31`), no state table.
    Type0,
    /// Additive feedback, degree 7, separation 3.
    Type1,
    /// Additive feedback, degree 15, separation 1.
    Type2,
    /// Additive feedback, degree 31, separation 3 — glibc's default.
    Type3,
    /// Additive feedback, degree 63, separation 1.
    Type4,
}

impl GeneratorType {
    /// (degree, separation) of the lag table; (0, 0) for the LCG.
    pub fn shape(self) -> (usize, usize) {
        match self {
            GeneratorType::Type0 => (0, 0),
            GeneratorType::Type1 => (7, 3),
            GeneratorType::Type2 => (15, 1),
            GeneratorType::Type3 => (31, 3),
            GeneratorType::Type4 => (63, 1),
        }
    }

    /// The type glibc picks for a given `initstate` buffer size in
    /// bytes, `None` if the buffer is too small (glibc errors below 8).
    pub fn for_state_size(bytes: usize) -> Option<GeneratorType> {
        Some(match bytes {
            0..=7 => return None,
            8..=31 => GeneratorType::Type0,
            32..=63 => GeneratorType::Type1,
            64..=127 => GeneratorType::Type2,
            128..=255 => GeneratorType::Type3,
            _ => GeneratorType::Type4,
        })
    }
}

/// Any-type glibc generator (see [`GeneratorType`]); [`GlibcRandom`] is
/// the TYPE_3 special case with a fixed-size table.
///
/// # Examples
///
/// ```
/// use glibc_rand::{GeneratorType, GlibcRandom, GlibcRandomAny};
///
/// // TYPE_3 through the generic interface matches the pinned one.
/// let mut a = GlibcRandomAny::new(GeneratorType::Type3, 1);
/// let mut b = GlibcRandom::new(1);
/// for _ in 0..100 {
///     assert_eq!(a.next_i31(), b.next_i31());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct GlibcRandomAny {
    ty: GeneratorType,
    table: Vec<i32>,
    f: usize,
    r: usize,
}

impl GlibcRandomAny {
    /// Creates a generator of the given type, seeded like `srandom_r`.
    pub fn new(ty: GeneratorType, seed: u32) -> Self {
        let seed = if seed == 0 { 1 } else { seed };
        let (deg, sep) = ty.shape();
        if deg == 0 {
            return Self {
                ty,
                table: vec![seed as i32],
                f: 0,
                r: 0,
            };
        }
        let mut table = vec![0i32; deg];
        table[0] = seed as i32;
        for i in 1..deg {
            let mut word = (LCG_A * (table[i - 1] as i64)) % LCG_M;
            if word < 0 {
                word += LCG_M;
            }
            table[i] = word as i32;
        }
        let mut g = Self {
            ty,
            table,
            f: sep,
            r: 0,
        };
        for _ in 0..(deg * 10) {
            g.next_i31();
        }
        g
    }

    /// The generator's type.
    pub fn generator_type(&self) -> GeneratorType {
        self.ty
    }

    /// One step; uniform in `[0, 2^31)`, bit-compatible with glibc
    /// `random()` under the same `initstate` type.
    #[inline]
    pub fn next_i31(&mut self) -> i32 {
        let deg = self.table.len();
        if deg == 1 {
            // TYPE_0 LCG, glibc's exact formula.
            let v = (self.table[0] as u32)
                .wrapping_mul(1103515245)
                .wrapping_add(12345)
                & 0x7fff_ffff;
            self.table[0] = v as i32;
            return v as i32;
        }
        let sum = self.table[self.f].wrapping_add(self.table[self.r]);
        self.table[self.f] = sum;
        let out = ((sum as u32) >> 1) as i32;
        self.f += 1;
        if self.f >= deg {
            self.f = 0;
        }
        self.r += 1;
        if self.r >= deg {
            self.r = 0;
        }
        out
    }

    /// Uniform in `[0, bound)` by modulo (the C benchmark's reduction).
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.next_i31() as u32) % bound
    }
}

/// Zipfian rank sampler over `[0, n)` (rank 0 hottest), using the
/// Gray et al. transform ("Quickly generating billion-record synthetic
/// databases", SIGMOD '94) — the same construction YCSB uses.
///
/// The sampler itself is stateless after construction (all state lives
/// in the [`GlibcRandom`] stream it draws from), so one `Zipfian` can be
/// shared by reference across benchmark threads while each thread keeps
/// its own deterministic per-seed stream — skewed keys with the exact
/// reproducibility of the paper's uniform workload.
///
/// `theta` in `[0, 1)` controls the skew: 0 is uniform, 0.99 is the
/// YCSB default where a handful of ranks absorb most of the draws.
/// Construction precomputes the harmonic normaliser in `O(n)`.
///
/// # Examples
///
/// ```
/// use glibc_rand::{GlibcRandom, Zipfian};
///
/// let zipf = Zipfian::new(1_000, 0.99);
/// let mut rng = GlibcRandom::new(42);
/// let mut hits0 = 0;
/// for _ in 0..1_000 {
///     let rank = zipf.sample(&mut rng);
///     assert!(rank < 1_000);
///     hits0 += (rank == 0) as u32;
/// }
/// // Rank 0 is drawn far more often than the uniform 1/1000.
/// assert!(hits0 > 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipfian {
    /// Creates a sampler over ranks `[0, n)` with skew `theta`.
    ///
    /// # Panics
    ///
    /// If `n == 0` or `theta` is outside `[0, 1)` (the Gray transform's
    /// domain; `theta >= 1` needs a different construction).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs a non-empty rank space");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// The rank-space size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most frequent.
    ///
    /// Resolution: one generator draw has 31 bits, so for `n` beyond
    /// ~2³¹ the reachable ranks are quantized (true of every θ,
    /// including the θ = 0 uniform case — both go through the same
    /// `[0, 1)` float).
    #[inline]
    pub fn sample(&self, rng: &mut GlibcRandom) -> u64 {
        if self.theta == 0.0 {
            // Uniform degenerate case, through the same float path as
            // the transform below so coverage and resolution match the
            // skewed points (a `% n` here would both bias low ranks and
            // cap coverage at 2³¹ regardless of n).
            let r = (rng.unit() * self.n as f64) as u64;
            return r.min(self.n - 1);
        }
        let u = rng.unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let zipf = Zipfian::new(97, 0.9);
        let mut a = GlibcRandom::new(7);
        let mut b = GlibcRandom::new(7);
        for _ in 0..10_000 {
            let x = zipf.sample(&mut a);
            assert!(x < 97);
            assert_eq!(x, zipf.sample(&mut b), "same seed, same stream");
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let zipf = Zipfian::new(16, 0.0);
        let mut rng = GlibcRandom::new(11);
        let mut buckets = [0u32; 16];
        let n = 64_000;
        for _ in 0..n {
            buckets[zipf.sample(&mut rng) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let zipf = Zipfian::new(10_000, 0.99);
        let mut rng = GlibcRandom::new(3);
        let total = 50_000;
        let mut top10 = 0u32;
        let mut hits = std::collections::HashMap::new();
        for _ in 0..total {
            let r = zipf.sample(&mut rng);
            top10 += (r < 10) as u32;
            *hits.entry(r).or_insert(0u32) += 1;
        }
        // Under θ=0.99 the ten hottest of 10⁴ ranks take a large
        // constant fraction of all draws (≈ 1/3); uniform would give
        // 0.1%.
        assert!(
            top10 as f64 / total as f64 > 0.2,
            "top-10 share too small: {top10}/{total}"
        );
        // And the hottest rank beats, e.g., rank 100 decisively.
        let h0 = *hits.get(&0).unwrap_or(&0);
        let h100 = *hits.get(&100).unwrap_or(&0);
        assert!(h0 > 5 * h100.max(1), "rank 0 ({h0}) vs rank 100 ({h100})");
    }

    #[test]
    fn frequency_is_monotone_over_rank_bands() {
        let zipf = Zipfian::new(1_000, 0.7);
        let mut rng = GlibcRandom::new(99);
        let mut bands = [0u32; 4]; // [0,10), [10,100), [100,500), [500,1000)
        for _ in 0..40_000 {
            match zipf.sample(&mut rng) {
                0..=9 => bands[0] += 1,
                10..=99 => bands[1] += 1,
                100..=499 => bands[2] += 1,
                _ => bands[3] += 1,
            }
        }
        // Per-rank mass must decrease band over band.
        let per_rank = [
            bands[0] as f64 / 10.0,
            bands[1] as f64 / 90.0,
            bands[2] as f64 / 400.0,
            bands[3] as f64 / 500.0,
        ];
        assert!(per_rank[0] > per_rank[1]);
        assert!(per_rank[1] > per_rank[2]);
        assert!(per_rank[2] > per_rank[3]);
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1)")]
    fn theta_one_is_rejected() {
        Zipfian::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty rank space")]
    fn empty_rank_space_is_rejected() {
        Zipfian::new(0, 0.5);
    }
}

#[cfg(test)]
mod family_tests {
    use super::*;

    #[test]
    fn type3_matches_pinned_implementation() {
        for seed in [1u32, 42, 0xDEAD_BEEF] {
            let mut a = GlibcRandomAny::new(GeneratorType::Type3, seed);
            let mut b = GlibcRandom::new(seed);
            for i in 0..500 {
                assert_eq!(a.next_i31(), b.next_i31(), "seed {seed}, step {i}");
            }
        }
    }

    #[test]
    fn type0_is_the_classic_weak_lcg() {
        // srandom(1) under TYPE_0: the canonical ANSI-C style sequence.
        let mut r = GlibcRandomAny::new(GeneratorType::Type0, 1);
        assert_eq!(r.next_i31(), 1103527590);
        assert_eq!(r.next_i31(), 377401575);
        assert_eq!(r.next_i31(), 662824084);
        assert_eq!(r.next_i31(), 1147902781);
        assert_eq!(r.next_i31(), 2035015474);
    }

    #[test]
    fn state_size_mapping_matches_glibc() {
        assert_eq!(GeneratorType::for_state_size(7), None);
        assert_eq!(GeneratorType::for_state_size(8), Some(GeneratorType::Type0));
        assert_eq!(
            GeneratorType::for_state_size(32),
            Some(GeneratorType::Type1)
        );
        assert_eq!(
            GeneratorType::for_state_size(64),
            Some(GeneratorType::Type2)
        );
        assert_eq!(
            GeneratorType::for_state_size(128),
            Some(GeneratorType::Type3)
        );
        assert_eq!(
            GeneratorType::for_state_size(256),
            Some(GeneratorType::Type4)
        );
        assert_eq!(
            GeneratorType::for_state_size(512),
            Some(GeneratorType::Type4)
        );
    }

    #[test]
    fn all_types_produce_31_bit_outputs() {
        for ty in [
            GeneratorType::Type0,
            GeneratorType::Type1,
            GeneratorType::Type2,
            GeneratorType::Type3,
            GeneratorType::Type4,
        ] {
            let mut r = GlibcRandomAny::new(ty, 123);
            for _ in 0..2_000 {
                assert!(r.next_i31() >= 0, "{ty:?}");
            }
        }
    }

    #[test]
    fn different_types_diverge() {
        let mut t1 = GlibcRandomAny::new(GeneratorType::Type1, 9);
        let mut t4 = GlibcRandomAny::new(GeneratorType::Type4, 9);
        let same = (0..200).filter(|_| t1.next_i31() == t4.next_i31()).count();
        assert!(same < 5);
    }

    #[test]
    fn warmup_depends_on_degree() {
        // The warm-up is 10×degree steps; seeding two degrees with the
        // same seed must immediately differ.
        let mut a = GlibcRandomAny::new(GeneratorType::Type1, 5);
        let mut b = GlibcRandomAny::new(GeneratorType::Type2, 5);
        assert_ne!(
            (0..8).map(|_| a.next_i31()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_i31()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_uniform_for_every_type() {
        for ty in [
            GeneratorType::Type1,
            GeneratorType::Type2,
            GeneratorType::Type4,
        ] {
            let mut r = GlibcRandomAny::new(ty, 77);
            let mut seen = [false; 16];
            for _ in 0..2_000 {
                seen[r.below(16) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "{ty:?}");
        }
    }
}
