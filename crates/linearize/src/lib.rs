//! # linearize
//!
//! A Wing–Gong linearizability checker for concurrent **set** histories,
//! used by the test-suite to validate the paper's §2 claim that the
//! pragmatic improvements "remain linearizable largely as the textbook
//! implementation".
//!
//! ## Model
//!
//! A [`History`] is a collection of completed operations, each an
//! `add(k)`, `remove(k)` or `contains(k)` with its boolean result and an
//! invocation/response timestamp pair drawn from one global monotone
//! clock ([`Recorder`]). The checker asks: does a total order of the
//! operations exist that (a) respects real time (if `a` responded before
//! `b` was invoked, `a` comes first) and (b) is legal for sequential set
//! semantics (`add` returns *true* iff the key was absent, `remove`
//! *true* iff present, `contains` reports presence)?
//!
//! ## Per-key decomposition
//!
//! Set operations on distinct keys access disjoint state, so the set is
//! observationally a *composition* of independent single-key objects.
//! By the Herlihy–Wing locality theorem, a history is linearizable over
//! the composed object iff each per-key subhistory is linearizable over
//! its single-key object. The checker therefore splits the history by
//! key and runs Wing–Gong per key — turning an O((Σn)!) search into
//! independent O(nᵏ!) searches that memoisation reduces further to
//! O(2^nᵏ) each.
//!
//! ## Per-key search
//!
//! Within one key the checker runs a DFS over subsets of operations
//! (`u64` masks, histories ≤ 64 ops per key; larger per-key histories are
//! rejected with [`CheckOutcome::TooLarge`]). A subset determines the
//! key's presence *uniquely*: only successful `add`s and `remove`s flip
//! presence, and any legal order of a fixed subset alternates them, so
//! presence = "more successful adds than removes linearized". That makes
//! plain subset memoisation sound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// The three set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `add(k)` — returns `true` iff `k` was absent and is now present.
    Add,
    /// `rem(k)` — returns `true` iff `k` was present and is now absent.
    Remove,
    /// `con(k)` — returns `true` iff `k` is present.
    Contains,
}

/// One completed operation in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Which operation.
    pub kind: OpKind,
    /// The key operated on.
    pub key: i64,
    /// The boolean result the implementation returned.
    pub result: bool,
    /// Global-clock timestamp taken immediately before the call.
    pub invoke: u64,
    /// Global-clock timestamp taken immediately after the return.
    pub response: u64,
    /// Identifier of the calling thread (diagnostics only).
    pub thread: u32,
}

/// A complete history: every operation has responded.
///
/// Build one by merging per-thread logs from [`Recorder::thread_log`]
/// via [`History::from_logs`], or directly from a vector of
/// [`Operation`]s.
#[derive(Debug, Clone, Default)]
pub struct History {
    ops: Vec<Operation>,
    /// Keys present before the history began (e.g. benchmark prefill).
    initially_present: HashSet<i64>,
}

impl History {
    /// A history from raw operations, with an empty initial set.
    pub fn new(ops: Vec<Operation>) -> Self {
        Self {
            ops,
            initially_present: HashSet::new(),
        }
    }

    /// Merges per-thread logs (any order) into one history.
    pub fn from_logs(logs: Vec<Vec<Operation>>) -> Self {
        Self::new(logs.into_iter().flatten().collect())
    }

    /// Declares keys present at the start (benchmark prefill).
    pub fn with_initial<I: IntoIterator<Item = i64>>(mut self, keys: I) -> Self {
        self.initially_present.extend(keys);
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Read access to the operations.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }
}

/// Result of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// A witness order exists for every key.
    Linearizable,
    /// No witness order exists; the offending key is reported.
    NotLinearizable {
        /// The key whose subhistory admits no legal order.
        key: i64,
    },
    /// A per-key subhistory exceeded 64 operations (mask width).
    TooLarge {
        /// The key whose subhistory is too large to check.
        key: i64,
        /// How many operations that key has.
        ops: usize,
    },
}

impl CheckOutcome {
    /// `true` iff the history was proven linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, CheckOutcome::Linearizable)
    }
}

/// Checks a history for linearizability against set semantics.
///
/// # Examples
///
/// ```
/// use linearize::{check, History, Operation, OpKind};
///
/// // Two sequential ops: add(1)=true then contains(1)=true. Legal.
/// let h = History::new(vec![
///     Operation { kind: OpKind::Add, key: 1, result: true, invoke: 0, response: 1, thread: 0 },
///     Operation { kind: OpKind::Contains, key: 1, result: true, invoke: 2, response: 3, thread: 0 },
/// ]);
/// assert!(check(&h).is_linearizable());
/// ```
pub fn check(history: &History) -> CheckOutcome {
    let mut per_key: HashMap<i64, Vec<Operation>> = HashMap::new();
    for op in &history.ops {
        per_key.entry(op.key).or_default().push(*op);
    }
    let mut keys: Vec<i64> = per_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let ops = &per_key[&key];
        if ops.len() > 64 {
            return CheckOutcome::TooLarge {
                key,
                ops: ops.len(),
            };
        }
        let init = history.initially_present.contains(&key);
        if !key_linearizable(ops, init) {
            return CheckOutcome::NotLinearizable { key };
        }
    }
    CheckOutcome::Linearizable
}

/// Wing–Gong DFS with subset memoisation for one key.
fn key_linearizable(ops: &[Operation], initially_present: bool) -> bool {
    let n = ops.len();
    if n == 0 {
        return true;
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut visited: HashSet<u64> = HashSet::new();
    // Explicit DFS stack of masks; presence is derived from the mask.
    let mut stack: Vec<u64> = vec![0];
    while let Some(mask) = stack.pop() {
        if mask == full {
            return true;
        }
        if !visited.insert(mask) {
            continue;
        }
        let present = presence(ops, mask, initially_present);
        // Earliest unfinished response bound: an op is *minimal* (may
        // linearize next) iff its invocation precedes every remaining
        // op's response.
        let mut min_response = u64::MAX;
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) == 0 {
                min_response = min_response.min(op.response);
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 || op.invoke > min_response {
                continue;
            }
            if legal(op, present) {
                stack.push(mask | (1 << i));
            }
        }
    }
    false
}

/// Presence of the key after linearizing exactly `mask`: successful adds
/// and removes must alternate in any legal order, so only their counts
/// matter.
fn presence(ops: &[Operation], mask: u64, initially_present: bool) -> bool {
    let mut adds = 0i64;
    let mut rems = 0i64;
    for (i, op) in ops.iter().enumerate() {
        if mask & (1 << i) != 0 && op.result {
            match op.kind {
                OpKind::Add => adds += 1,
                OpKind::Remove => rems += 1,
                OpKind::Contains => {}
            }
        }
    }
    if initially_present {
        adds + 1 > rems
    } else {
        adds > rems
    }
}

/// Is `op`'s recorded result legal when the key's presence is `present`?
fn legal(op: &Operation, present: bool) -> bool {
    match op.kind {
        OpKind::Add => op.result != present,
        OpKind::Remove | OpKind::Contains => op.result == present,
    }
}

/// Detailed check result: verdict plus, when linearizable, a per-key
/// *witness* (a legal total order of that key's operation indices into
/// [`History::operations`]) and search-effort statistics.
#[derive(Debug, Clone)]
pub struct DetailedOutcome {
    /// The verdict.
    pub outcome: CheckOutcome,
    /// For each key, the operation indices in witness (linearization)
    /// order. Present only when the verdict is `Linearizable`.
    pub witnesses: std::collections::HashMap<i64, Vec<usize>>,
    /// States (operation subsets) explored across all keys — the cost of
    /// the check.
    pub states_explored: usize,
}

/// Like [`check`], additionally producing per-key witness orders for
/// debugging non-obvious interleavings and reporting search effort.
///
/// Each witness is a legal sequential execution of that key's
/// operations consistent with real time; by the locality argument in
/// the module docs, any interleaving of the witnesses that respects
/// real time is a witness for the whole history.
pub fn check_detailed(history: &History) -> DetailedOutcome {
    let mut per_key: HashMap<i64, Vec<(usize, Operation)>> = HashMap::new();
    for (i, op) in history.ops.iter().enumerate() {
        per_key.entry(op.key).or_default().push((i, *op));
    }
    let mut keys: Vec<i64> = per_key.keys().copied().collect();
    keys.sort_unstable();
    let mut witnesses = std::collections::HashMap::new();
    let mut states = 0usize;
    for key in keys {
        let indexed = &per_key[&key];
        let ops: Vec<Operation> = indexed.iter().map(|(_, o)| *o).collect();
        if ops.len() > 64 {
            return DetailedOutcome {
                outcome: CheckOutcome::TooLarge {
                    key,
                    ops: ops.len(),
                },
                witnesses: std::collections::HashMap::new(),
                states_explored: states,
            };
        }
        let init = history.initially_present.contains(&key);
        match key_witness(&ops, init) {
            (Some(order), explored) => {
                states += explored;
                witnesses.insert(key, order.into_iter().map(|i| indexed[i].0).collect());
            }
            (None, explored) => {
                states += explored;
                return DetailedOutcome {
                    outcome: CheckOutcome::NotLinearizable { key },
                    witnesses: std::collections::HashMap::new(),
                    states_explored: states,
                };
            }
        }
    }
    DetailedOutcome {
        outcome: CheckOutcome::Linearizable,
        witnesses,
        states_explored: states,
    }
}

/// Wing–Gong DFS with parent tracking for witness reconstruction.
fn key_witness(ops: &[Operation], initially_present: bool) -> (Option<Vec<usize>>, usize) {
    let n = ops.len();
    if n == 0 {
        return (Some(Vec::new()), 0);
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // mask -> (parent mask, op chosen to get here)
    let mut parent: HashMap<u64, (u64, usize)> = HashMap::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<u64> = vec![0];
    while let Some(mask) = stack.pop() {
        if mask == full {
            // Reconstruct the order by walking parents back to 0.
            let mut order = Vec::with_capacity(n);
            let mut m = mask;
            while m != 0 {
                let (pm, i) = parent[&m];
                order.push(i);
                m = pm;
            }
            order.reverse();
            return (Some(order), visited.len());
        }
        if !visited.insert(mask) {
            continue;
        }
        let present = presence(ops, mask, initially_present);
        let mut min_response = u64::MAX;
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) == 0 {
                min_response = min_response.min(op.response);
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 || op.invoke > min_response {
                continue;
            }
            if legal(op, present) {
                let next = mask | (1 << i);
                parent.entry(next).or_insert((mask, i));
                stack.push(next);
            }
        }
    }
    (None, visited.len())
}

/// Shared monotone clock + per-thread operation logs for recording
/// histories around any `SetHandle`-like API (see `pragmatic-list`).
///
/// ```
/// use linearize::{check, History, OpKind, Recorder};
///
/// let rec = Recorder::new();
/// let mut log = rec.thread_log(0);
/// let t0 = rec.stamp();
/// // ... call the data structure ...
/// let t1 = rec.stamp();
/// log.push_op(OpKind::Add, 7, true, t0, t1);
/// let h = History::from_logs(vec![log.into_ops()]);
/// assert!(check(&h).is_linearizable());
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// New recorder with the clock at zero.
    pub fn new() -> Self {
        Self {
            clock: AtomicU64::new(0),
        }
    }

    /// Takes a timestamp. `AcqRel` success ordering makes stamps taken
    /// around an operation bracket its effect.
    pub fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel)
    }

    /// Creates an empty log for one thread.
    pub fn thread_log(&self, thread: u32) -> ThreadLog {
        ThreadLog {
            thread,
            ops: Vec::new(),
        }
    }
}

/// Per-thread log of completed operations.
#[derive(Debug)]
pub struct ThreadLog {
    thread: u32,
    ops: Vec<Operation>,
}

impl ThreadLog {
    /// Records one completed operation with pre-taken timestamps.
    pub fn push_op(&mut self, kind: OpKind, key: i64, result: bool, invoke: u64, response: u64) {
        debug_assert!(invoke < response, "timestamps must bracket the call");
        self.ops.push(Operation {
            kind,
            key,
            result,
            invoke,
            response,
            thread: self.thread,
        });
    }

    /// Consumes the log.
    pub fn into_ops(self) -> Vec<Operation> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, key: i64, result: bool, invoke: u64, response: u64) -> Operation {
        Operation {
            kind,
            key,
            result,
            invoke,
            response,
            thread: 0,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check(&History::default()).is_linearizable());
    }

    #[test]
    fn sequential_legal_history() {
        let h = History::new(vec![
            op(OpKind::Add, 1, true, 0, 1),
            op(OpKind::Contains, 1, true, 2, 3),
            op(OpKind::Remove, 1, true, 4, 5),
            op(OpKind::Contains, 1, false, 6, 7),
            op(OpKind::Add, 1, true, 8, 9),
        ]);
        assert!(check(&h).is_linearizable());
    }

    #[test]
    fn sequential_illegal_history() {
        // contains(1)=true before any add: impossible.
        let h = History::new(vec![
            op(OpKind::Contains, 1, true, 0, 1),
            op(OpKind::Add, 1, true, 2, 3),
        ]);
        assert_eq!(check(&h), CheckOutcome::NotLinearizable { key: 1 });
    }

    #[test]
    fn double_successful_add_without_remove_is_illegal() {
        let h = History::new(vec![
            op(OpKind::Add, 1, true, 0, 1),
            op(OpKind::Add, 1, true, 2, 3),
        ]);
        assert!(!check(&h).is_linearizable());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // contains(1)=true overlaps the add(1)=true: legal, because the
        // add may linearize first inside the overlap.
        let h = History::new(vec![
            op(OpKind::Add, 1, true, 0, 10),
            op(OpKind::Contains, 1, true, 1, 9),
        ]);
        assert!(check(&h).is_linearizable());
    }

    #[test]
    fn non_overlapping_ops_must_not_reorder() {
        // contains(1)=true strictly *before* the add(1): illegal.
        let h = History::new(vec![
            op(OpKind::Contains, 1, true, 0, 1),
            op(OpKind::Add, 1, true, 5, 6),
        ]);
        assert!(!check(&h).is_linearizable());
    }

    #[test]
    fn failed_operations_respect_state() {
        let h = History::new(vec![
            op(OpKind::Add, 3, true, 0, 1),
            op(OpKind::Add, 3, false, 2, 3), // duplicate
            op(OpKind::Remove, 3, true, 4, 5),
            op(OpKind::Remove, 3, false, 6, 7), // already gone
        ]);
        assert!(check(&h).is_linearizable());
    }

    #[test]
    fn failed_add_before_any_add_is_illegal() {
        let h = History::new(vec![
            op(OpKind::Add, 3, false, 0, 1),
            op(OpKind::Add, 3, true, 2, 3),
        ]);
        assert!(!check(&h).is_linearizable());
    }

    #[test]
    fn initial_contents_respected() {
        let h = History::new(vec![
            op(OpKind::Contains, 9, true, 0, 1),
            op(OpKind::Remove, 9, true, 2, 3),
        ])
        .with_initial([9]);
        assert!(check(&h).is_linearizable());

        let h2 = History::new(vec![op(OpKind::Remove, 9, true, 0, 1)]);
        assert!(
            !check(&h2).is_linearizable(),
            "no prefill: remove must fail"
        );
    }

    #[test]
    fn keys_are_independent() {
        // Illegal on key 2, regardless of a legal key-1 trace.
        let h = History::new(vec![
            op(OpKind::Add, 1, true, 0, 1),
            op(OpKind::Contains, 2, true, 2, 3),
        ]);
        assert_eq!(check(&h), CheckOutcome::NotLinearizable { key: 2 });
    }

    #[test]
    fn racy_remove_pair_one_winner() {
        // Two overlapping removes of a present key: exactly one may win.
        let h = History::new(vec![
            op(OpKind::Add, 5, true, 0, 1),
            op(OpKind::Remove, 5, true, 2, 10),
            op(OpKind::Remove, 5, false, 3, 9),
        ]);
        assert!(check(&h).is_linearizable());

        let both_win = History::new(vec![
            op(OpKind::Add, 5, true, 0, 1),
            op(OpKind::Remove, 5, true, 2, 10),
            op(OpKind::Remove, 5, true, 3, 9),
        ]);
        assert!(!check(&both_win).is_linearizable());
    }

    #[test]
    fn paper_rem_linearization_scenario() {
        // The §2 rem() observation: a remove that fails because another
        // thread marked the node linearizes *before* an overlapping
        // re-add of the same key. History: key present; T1 remove=true,
        // T2 remove=false and T3 add=true all overlapping.
        let h = History::new(vec![
            op(OpKind::Add, 7, true, 0, 1),
            op(OpKind::Remove, 7, true, 2, 20),
            op(OpKind::Remove, 7, false, 3, 19),
            op(OpKind::Add, 7, true, 4, 18),
            op(OpKind::Contains, 7, true, 21, 22),
        ]);
        assert!(check(&h).is_linearizable());
    }

    #[test]
    fn too_large_subhistory_reported() {
        let ops: Vec<Operation> = (0..65)
            .map(|i| op(OpKind::Contains, 1, false, 2 * i, 2 * i + 1))
            .collect();
        let h = History::new(ops);
        assert_eq!(check(&h), CheckOutcome::TooLarge { key: 1, ops: 65 });
    }

    #[test]
    fn recorder_produces_bracketed_timestamps() {
        let rec = Recorder::new();
        let mut log = rec.thread_log(3);
        let a = rec.stamp();
        let b = rec.stamp();
        log.push_op(OpKind::Add, 1, true, a, b);
        let ops = log.into_ops();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].invoke < ops[0].response);
        assert_eq!(ops[0].thread, 3);
    }

    #[test]
    fn dense_overlap_stress_linearizable() {
        // A synthetic all-overlapping batch that is satisfiable: n adds
        // with exactly one winner, n-1 losers, all concurrent.
        let mut ops = vec![op(OpKind::Add, 4, true, 0, 100)];
        for i in 0..10 {
            ops.push(op(OpKind::Add, 4, false, i, 100 + i));
        }
        assert!(check(&History::new(ops)).is_linearizable());
    }

    #[test]
    fn contains_flicker_is_illegal_without_writer() {
        // contains=false then contains=true sequentially, no add between.
        let h = History::new(vec![
            op(OpKind::Contains, 8, false, 0, 1),
            op(OpKind::Contains, 8, true, 2, 3),
        ]);
        assert!(!check(&h).is_linearizable());
    }
}

#[cfg(test)]
mod witness_tests {
    use super::*;

    fn op(kind: OpKind, key: i64, result: bool, invoke: u64, response: u64) -> Operation {
        Operation {
            kind,
            key,
            result,
            invoke,
            response,
            thread: 0,
        }
    }

    /// Replays a witness sequentially and asserts every step is legal.
    fn replay_witness(h: &History, witnesses: &std::collections::HashMap<i64, Vec<usize>>) {
        for (&key, order) in witnesses {
            let mut present = false;
            for &i in order {
                let o = &h.operations()[i];
                assert_eq!(o.key, key);
                match o.kind {
                    OpKind::Add => {
                        assert_eq!(o.result, !present, "witness illegal at op {i}");
                        if o.result {
                            present = true;
                        }
                    }
                    OpKind::Remove => {
                        assert_eq!(o.result, present, "witness illegal at op {i}");
                        if o.result {
                            present = false;
                        }
                    }
                    OpKind::Contains => assert_eq!(o.result, present, "witness illegal at op {i}"),
                }
            }
        }
        // Pairwise real-time: if a responded before b invoked, a must
        // precede b in the witness.
        for order in witnesses.values() {
            for (x, &a) in order.iter().enumerate() {
                for &b in &order[x + 1..] {
                    let (oa, ob) = (&h.operations()[a], &h.operations()[b]);
                    assert!(
                        ob.response > oa.invoke,
                        "witness violates real time: {a} before {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn witness_reconstructs_sequential_history() {
        let h = History::new(vec![
            op(OpKind::Add, 1, true, 0, 1),
            op(OpKind::Contains, 1, true, 2, 3),
            op(OpKind::Remove, 1, true, 4, 5),
        ]);
        let d = check_detailed(&h);
        assert!(d.outcome.is_linearizable());
        assert_eq!(d.witnesses[&1], vec![0, 1, 2]);
        replay_witness(&h, &d.witnesses);
    }

    #[test]
    fn witness_reorders_overlapping_ops() {
        // con(1)=true invoked before the add responds: witness must put
        // the add first even though it was invoked later... (invoked
        // earlier here; the point is the overlap).
        let h = History::new(vec![
            op(OpKind::Contains, 1, true, 0, 10),
            op(OpKind::Add, 1, true, 1, 9),
        ]);
        let d = check_detailed(&h);
        assert!(d.outcome.is_linearizable());
        assert_eq!(d.witnesses[&1], vec![1, 0], "add must linearize first");
        replay_witness(&h, &d.witnesses);
    }

    #[test]
    fn detailed_agrees_with_plain_check_on_failures() {
        let h = History::new(vec![
            op(OpKind::Contains, 3, true, 0, 1),
            op(OpKind::Add, 3, true, 2, 3),
        ]);
        let d = check_detailed(&h);
        assert_eq!(d.outcome, CheckOutcome::NotLinearizable { key: 3 });
        assert_eq!(d.outcome, check(&h));
        assert!(d.witnesses.is_empty());
        assert!(d.states_explored >= 1);
    }

    #[test]
    fn multi_key_witnesses_cover_every_operation() {
        let h = History::new(vec![
            op(OpKind::Add, 1, true, 0, 3),
            op(OpKind::Add, 2, true, 1, 4),
            op(OpKind::Remove, 1, true, 5, 8),
            op(OpKind::Contains, 2, true, 6, 9),
        ]);
        let d = check_detailed(&h);
        assert!(d.outcome.is_linearizable());
        let covered: usize = d.witnesses.values().map(|w| w.len()).sum();
        assert_eq!(covered, 4);
        replay_witness(&h, &d.witnesses);
    }

    #[test]
    fn simulated_lock_step_executions_always_check_out() {
        // Generate histories by actually executing a sequential set with
        // artificially widened intervals; they are linearizable by
        // construction and the checker must agree (checker soundness on
        // the accept side).
        use std::collections::HashSet as Std;
        let mut x = 424242u64;
        for round in 0..50 {
            let mut set: Std<i64> = Std::new();
            let mut ops = Vec::new();
            let mut t = 0u64;
            for _ in 0..30 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
                let key = ((x >> 33) % 5) as i64;
                let kind = match (x >> 7) % 3 {
                    0 => OpKind::Add,
                    1 => OpKind::Remove,
                    _ => OpKind::Contains,
                };
                let result = match kind {
                    OpKind::Add => set.insert(key),
                    OpKind::Remove => set.remove(&key),
                    OpKind::Contains => set.contains(&key),
                };
                // Widen the interval backwards over the previous op to
                // create overlap without breaking legality.
                let invoke = t.saturating_sub(1);
                let response = t + 2;
                t += 2;
                ops.push(Operation {
                    kind,
                    key,
                    result,
                    invoke,
                    response,
                    thread: 0,
                });
            }
            let d = check_detailed(&History::new(ops));
            assert!(d.outcome.is_linearizable(), "round {round}");
        }
    }

    #[test]
    fn corrupted_results_are_often_rejected_and_never_crash() {
        // Checker robustness: flip one result bit of a legal history;
        // the checker must terminate with *some* verdict (flips inside
        // overlaps may legitimately stay linearizable).
        let base = vec![
            op(OpKind::Add, 1, true, 0, 1),
            op(OpKind::Contains, 1, true, 2, 3),
            op(OpKind::Remove, 1, true, 4, 5),
            op(OpKind::Contains, 1, false, 6, 7),
            op(OpKind::Add, 1, true, 8, 9),
            op(OpKind::Remove, 1, true, 10, 11),
        ];
        let mut rejected = 0;
        for flip in 0..base.len() {
            let mut ops = base.clone();
            ops[flip].result = !ops[flip].result;
            if !check(&History::new(ops)).is_linearizable() {
                rejected += 1;
            }
        }
        assert_eq!(
            rejected,
            base.len(),
            "every single-bit corruption of this sequential history is illegal"
        );
    }
}
