//! Offline shim for the `proptest` API subset used by this workspace's
//! property tests.
//!
//! Implements the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! integer-range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`] and [`ProptestConfig::with_cases`]. Inputs are sampled
//! from a deterministic SplitMix64 stream seeded per test name and case
//! index, so failures are reproducible run-to-run; there is no
//! shrinking — a failing case prints its inputs via the panic message
//! of the assertion that failed.

use std::ops::{Range, RangeInclusive};

/// Test-run configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case; the seed mixes the test path and
    /// case index so every case sees a distinct stream.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. The shim samples directly (no intermediate value
/// trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*
    };
}

impl_int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` samples with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assertion macro (plain `assert!` here: no shrinking to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            // The `#[test]` attribute arrives through `$meta`, exactly
            // as written inside the `proptest!` block.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::sample(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(1i64..=32), &mut rng);
            assert!((1..=32).contains(&v));
            let v = Strategy::sample(&(0..3), &mut rng);
            assert!((0..3).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let a = Strategy::sample(
            &crate::collection::vec(0u64..100, 1..50),
            &mut crate::TestRng::for_case("det", 7),
        );
        let b = Strategy::sample(
            &crate::collection::vec(0u64..100, 1..50),
            &mut crate::TestRng::for_case("det", 7),
        );
        assert_eq!(a, b);
        let c = Strategy::sample(
            &crate::collection::vec(0u64..100, 1..50),
            &mut crate::TestRng::for_case("det", 8),
        );
        assert_ne!(a, c, "different cases draw different streams");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: multiple args, tuples, prop_map, vec.
        #[test]
        fn macro_generates_cases(
            tape in crate::collection::vec((0..3, 1i64..=16).prop_map(|(a, b)| (a, b)), 1..40),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!tape.is_empty() && tape.len() < 40);
            for &(op, k) in &tape {
                prop_assert!((0..3).contains(&op));
                prop_assert!((1..=16).contains(&k));
            }
            let _ = flag;
        }
    }
}
