//! Offline shim for the `criterion` API subset used by this workspace's
//! benches (`crates/bench/benches/*`).
//!
//! Implements benchmark groups, `Throughput::Elements`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark runs `sample_size` timed iterations (after one
//! warm-up) and prints the mean wall time per iteration, plus element
//! throughput when configured — no statistical analysis, no HTML
//! reports. Swap the workspace dependency back to registry criterion
//! for real measurements.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to every group function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `name/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    fn run_one(&mut self, label: &str, mut run: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // One untimed warm-up round.
        run(&mut bencher);
        bencher.elapsed = Duration::ZERO;
        bencher.iters = 0;
        for _ in 0..self.sample_size {
            run(&mut bencher);
        }
        let iters = bencher.iters.max(1);
        let per_iter = bencher.elapsed / iters as u32;
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let eps = n as f64 / per_iter.as_secs_f64();
                println!("  {label}: {per_iter:?}/iter ({eps:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let bps = n as f64 / per_iter.as_secs_f64();
                println!("  {label}: {per_iter:?}/iter ({bps:.0} B/s)");
            }
            _ => println!("  {label}: {per_iter:?}/iter"),
        }
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing handle passed to every benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one call of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(std::hint::black_box(out));
    }
}

/// Opaque black box re-export for parity with upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.sample_size(5)
            .throughput(Throughput::Elements(100))
            .bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
        g.finish();
        assert_eq!(calls, 6, "one warm-up + sample_size timed iterations");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("variant", 8).to_string(), "variant/8");
    }
}
