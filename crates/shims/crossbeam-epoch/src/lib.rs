//! Offline shim for the `crossbeam-epoch` API subset used by this
//! workspace, implemented over a real — if deliberately simple —
//! epoch-based reclamation scheme.
//!
//! ## What is implemented
//!
//! * [`Atomic`], [`Owned`], [`Shared`] tagged pointers (tag lives in the
//!   alignment bits, as upstream).
//! * [`pin`] / [`Guard`] participation, including nested pins per
//!   thread, and the unsafe [`unprotected`] guard.
//! * [`Guard::defer_destroy`] with deferred frees.
//!
//! ## The reclamation scheme
//!
//! The classic three-epoch algorithm: a global epoch counter advances
//! only when every pinned participant has been observed in the current
//! epoch; garbage retired in epoch `e` is freed once the global epoch
//! reaches `e + 2`, at which point no pinned thread can still hold a
//! reference to it (it was unlinked before retirement, so only threads
//! already pinned when it was retired may know it; those threads block
//! the first advance, and after two advances all of them have unpinned
//! at least once).
//!
//! The hot path (pin/unpin) is two `SeqCst` stores on a thread-local
//! slot. Registration, epoch advancement and garbage collection go
//! through mutexes — simpler and slower than upstream's lock-free local
//! bags, but correctness-equivalent for the workloads here.

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem;
use std::sync::atomic::Ordering;

// Synchronization facade: real std primitives normally; the `interleave`
// model checker's instrumented shims under `RUSTFLAGS="--cfg interleave"`,
// so the epoch protocol itself (EPOCH / Slot.active ordering) is part of
// the explored state space in the workspace's model-checked tests.
#[cfg(not(interleave))]
use std::sync::atomic::AtomicUsize;
#[cfg(not(interleave))]
use std::sync::Mutex;

#[cfg(interleave)]
use interleave::sync::{AtomicUsize, Mutex};

// ---------------------------------------------------------------------------
// Global epoch machinery

/// One registered participant. Leaked into the registry and reused as
/// threads come and go; `active == 0` means unpinned, otherwise it holds
/// `epoch_at_pin + 1`.
///
/// Aligned away from its neighbours: every pin/unpin stores to `active`,
/// and slots allocated back-to-back would false-share those stores
/// across all participating threads.
#[repr(align(128))]
struct Slot {
    active: AtomicUsize,
    in_use: AtomicUsize,
}

/// Global epoch counter.
static EPOCH: AtomicUsize = AtomicUsize::new(0);
/// All slots ever created (leaked; freed slots are recycled).
static REGISTRY: Mutex<Vec<&'static Slot>> = Mutex::new(Vec::new());

/// A deferred destruction: either the classic free-a-`Box` pair or an
/// arbitrary closure (upstream's `defer_unchecked`, used by slab
/// recycling to return a slot to its pool instead of freeing it).
enum Task {
    /// (untagged pointer, dropper) — frees a `Box`.
    DropBox(usize, unsafe fn(usize)),
    /// Runs once when the grace period has passed.
    Call(Box<dyn FnOnce() + Send>),
    /// Allocation-free two-word deferred call (`defer_raw`): hot retire
    /// paths avoid the `Box<dyn FnOnce>` of [`Task::Call`].
    CallRaw(usize, usize, unsafe fn(usize, usize)),
}

impl Task {
    /// Executes the deferred action.
    ///
    /// # Safety
    ///
    /// The grace-period argument of the scheme: no pinned thread from
    /// before the retirement may still be active.
    unsafe fn run(self) {
        match self {
            // SAFETY: forwarded contract of `defer_destroy`/`defer_raw`.
            Task::DropBox(ptr, dropper) => unsafe { dropper(ptr) },
            Task::Call(f) => f(),
            Task::CallRaw(a, b, f) => unsafe { f(a, b) },
        }
    }
}

/// One retired item: (retirement epoch, deferred action).
type Garbage = (usize, Task);
/// Retired garbage awaiting two epoch advances.
static GARBAGE: Mutex<Vec<Garbage>> = Mutex::new(Vec::new());
/// Unpin events since the last collection attempt (coarse trigger).
static UNPIN_TICKS: AtomicUsize = AtomicUsize::new(0);

/// How many unpins between collection attempts.
#[cfg(not(interleave))]
const COLLECT_EVERY: usize = 64;
/// Under the model checker: collect on every unpin so reclamation is
/// part of every explored schedule and executions stay short.
#[cfg(interleave)]
const COLLECT_EVERY: usize = 1;

thread_local! {
    static LOCAL: Local = Local::new();
}

/// Per-thread pin state: the registered slot plus a nesting counter so
/// nested `pin()` calls share one activation.
struct Local {
    slot: &'static Slot,
    pin_depth: Cell<usize>,
}

impl Local {
    fn new() -> Local {
        let mut reg = REGISTRY.lock().unwrap();
        let slot = reg
            .iter()
            .copied()
            .find(|s| {
                s.in_use
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            })
            .unwrap_or_else(|| {
                let s: &'static Slot = Box::leak(Box::new(Slot {
                    active: AtomicUsize::new(0),
                    in_use: AtomicUsize::new(1),
                }));
                reg.push(s);
                s
            });
        Local {
            slot,
            pin_depth: Cell::new(0),
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.slot.active.store(0, Ordering::SeqCst);
        self.slot.in_use.store(0, Ordering::Release);
    }
}

/// Advances the global epoch if every pinned participant has been
/// observed in the current one, then frees sufficiently old garbage.
fn collect() {
    let e = EPOCH.load(Ordering::SeqCst);
    let all_current = {
        let reg = REGISTRY.lock().unwrap();
        reg.iter().all(|s| {
            let a = s.active.load(Ordering::SeqCst);
            a == 0 || a == e + 1
        })
    };
    if all_current {
        // A lost race just means someone else advanced for us.
        let _ = EPOCH.compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
    }
    let now = EPOCH.load(Ordering::SeqCst);
    let mut freeable = Vec::new();
    {
        let mut garbage = GARBAGE.lock().unwrap();
        let mut i = 0;
        while i < garbage.len() {
            if garbage[i].0 + 2 <= now {
                freeable.push(garbage.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
    }
    for task in freeable {
        // SAFETY: the item was retired ≥ 2 epochs ago, so no pinned
        // thread can still reference it (see module docs).
        unsafe { task.run() };
    }
}

/// Model-checking support: resets the process-global reclamation state
/// between explored executions. Wire into `interleave::Builder::on_reset`
/// for any checked closure that pins, defers, or flushes.
///
/// Pending garbage from the previous execution is *run*, not dropped:
/// all of that execution's threads have joined and nothing is pinned, so
/// every grace period has trivially passed and running the deferred
/// destructors is the leak-free option.
#[cfg(interleave)]
pub fn interleave_reset() {
    let drained: Vec<Garbage> = {
        let mut garbage = GARBAGE.lock().unwrap();
        garbage.drain(..).collect()
    };
    for (_, task) in drained {
        // SAFETY: see above — the retiring execution has fully
        // terminated, so no thread can still reference the items.
        unsafe { task.run() };
    }
    EPOCH.store(0, Ordering::SeqCst);
    UNPIN_TICKS.store(0, Ordering::SeqCst);
    for s in REGISTRY.lock().unwrap().iter() {
        s.active.store(0, Ordering::SeqCst);
        s.in_use.store(0, Ordering::SeqCst);
    }
}

/// Pins the current thread, returning a guard that keeps the current
/// epoch's garbage alive until dropped.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.pin_depth.get();
        if depth == 0 {
            // Publish our epoch; re-check in case the global advanced
            // between the read and the store, so that an advancing
            // thread can never miss us at an epoch older than it freed.
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                local.slot.active.store(e + 1, Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        local.pin_depth.set(depth + 1);
    });
    Guard {
        pinned: true,
        _not_send: PhantomData,
    }
}

/// Returns a guard usable without pinning.
///
/// # Safety
///
/// The caller must guarantee no other thread is concurrently mutating
/// the data structure (e.g. inside `Drop` with `&mut self`). Deferred
/// destructions through this guard run immediately.
pub unsafe fn unprotected() -> &'static Guard {
    struct SyncGuard(Guard);
    // SAFETY: the unprotected guard is immutable (`pinned: false`) and
    // every use is gated by this function's own safety contract.
    unsafe impl Sync for SyncGuard {}
    static UNPROTECTED: SyncGuard = SyncGuard(Guard {
        pinned: false,
        _not_send: PhantomData,
    });
    &UNPROTECTED.0
}

/// An epoch pin. While alive, garbage retired in the pinned epoch (or
/// later) is not freed.
pub struct Guard {
    pinned: bool,
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Retires the object behind `ptr`: it is dropped and freed once no
    /// pinned thread can still hold a reference to it.
    ///
    /// # Safety
    ///
    /// `ptr` must have been unlinked from the data structure (no new
    /// references can be created), must be non-null, and must not be
    /// retired twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        /// # Safety
        /// `raw` must be an untagged pointer from `Box::into_raw`,
        /// consumed exactly once (upheld by `defer_destroy`'s contract).
        unsafe fn drop_box<T>(raw: usize) {
            drop(Box::from_raw(raw as *mut T));
        }
        let raw = ptr.untagged();
        debug_assert!(raw != 0, "defer_destroy(null)");
        if !self.pinned {
            // Unprotected guard: the caller vouches for exclusivity.
            drop_box::<T>(raw);
            return;
        }
        self.defer_task(Task::DropBox(raw, drop_box::<T>));
    }

    /// Defers an arbitrary closure until the grace period has passed
    /// (upstream's `defer_unchecked`). With an [`unprotected`] guard the
    /// closure runs immediately.
    ///
    /// # Safety
    ///
    /// The closure must remain sound to run at any later time on any
    /// thread — in particular, whatever it touches must stay alive until
    /// it runs (capture owning handles, e.g. an `Arc`).
    pub unsafe fn defer_unchecked<F: FnOnce() + Send + 'static>(&self, f: F) {
        if !self.pinned {
            f();
            return;
        }
        self.defer_task(Task::Call(Box::new(f)));
    }

    /// Allocation-free variant of [`defer_unchecked`](Guard::defer_unchecked)
    /// for hot retire paths: defers `f(a, b)` as three plain words. With
    /// an [`unprotected`] guard, runs immediately.
    ///
    /// # Safety
    ///
    /// As [`defer_unchecked`](Guard::defer_unchecked): `f(a, b)` must be
    /// sound to run at any later time on any thread, so `a`/`b` must
    /// encode owned or otherwise kept-alive state.
    pub unsafe fn defer_raw(&self, a: usize, b: usize, f: unsafe fn(usize, usize)) {
        if !self.pinned {
            // SAFETY: the caller vouches for exclusivity.
            unsafe { f(a, b) };
            return;
        }
        self.defer_task(Task::CallRaw(a, b, f));
    }

    fn defer_task(&self, task: Task) {
        let e = EPOCH.load(Ordering::SeqCst);
        let len = {
            let mut garbage = GARBAGE.lock().unwrap();
            garbage.push((e, task));
            garbage.len()
        };
        // Aggressive trigger when the backlog grows; the common trigger
        // is the unpin tick in `Drop`. Disabled under the model checker:
        // a backlog-length trigger makes collection timing depend on how
        // much garbage *other* schedules happened to leave behind, which
        // the deterministic explorer must not observe.
        if !cfg!(interleave) && len >= 4 * COLLECT_EVERY {
            collect();
        }
    }

    /// Drives one collection round: tries to advance the epoch and frees
    /// sufficiently old garbage (upstream's `Guard::flush`).
    ///
    /// Repeated calls from an unpinned (or freshly pinned) thread
    /// advance the epoch enough to free everything retired earlier,
    /// unless another thread holds a pin.
    pub fn flush(&self) {
        collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.pinned {
            return;
        }
        let unpinned = LOCAL.with(|local| {
            let depth = local.pin_depth.get();
            local.pin_depth.set(depth - 1);
            if depth == 1 {
                local.slot.active.store(0, Ordering::SeqCst);
                true
            } else {
                false
            }
        });
        if unpinned
            && UNPIN_TICKS
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(COLLECT_EVERY)
        {
            collect();
        }
    }
}

// ---------------------------------------------------------------------------
// Tagged pointers

#[inline]
fn tag_mask<T>() -> usize {
    mem::align_of::<T>() - 1
}

/// Trait unifying `Owned` and `Shared` as inputs to `Atomic` writes.
pub trait Pointer<T> {
    /// Consumes the pointer into its raw tagged representation.
    fn into_usize(self) -> usize;
    /// Rebuilds the pointer from a raw tagged representation.
    ///
    /// # Safety
    ///
    /// `data` must have come from `into_usize` of the same impl, with
    /// ownership transferred back exactly once for owning pointers.
    unsafe fn from_usize(data: usize) -> Self;
}

/// An owned, heap-allocated pointer (the not-yet-published node).
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Owned<T> {
        Owned {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `data` is a live, exclusively-owned allocation.
        unsafe { &*((self.data & !tag_mask::<T>()) as *const T) }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`, and we hold `&mut self`.
        unsafe { &mut *((self.data & !tag_mask::<T>()) as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: an `Owned` that was never consumed still owns its box.
        unsafe { drop(Box::from_raw((self.data & !tag_mask::<T>()) as *mut T)) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }
    // SAFETY: implements the documented `Pointer::from_usize` contract.
    unsafe fn from_usize(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

/// A shared, possibly tagged pointer valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Shared<'g, T> {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn untagged(self) -> usize {
        self.data & !tag_mask::<T>()
    }

    /// The tag stored in the alignment bits.
    #[inline]
    pub fn tag(self) -> usize {
        self.data & tag_mask::<T>()
    }

    /// Same pointer with the tag replaced by `tag`.
    #[inline]
    pub fn with_tag(self, tag: usize) -> Shared<'g, T> {
        Shared {
            data: self.untagged() | (tag & tag_mask::<T>()),
            _marker: PhantomData,
        }
    }

    /// `true` iff the untagged pointer is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.untagged() == 0
    }

    /// Dereferences, returning `None` for null.
    ///
    /// # Safety
    ///
    /// The pointee must be alive for `'g` (guaranteed by loading it
    /// under the guard from a structure that defers destruction).
    pub unsafe fn as_ref(self) -> Option<&'g T> {
        let raw = self.untagged();
        if raw == 0 {
            None
        } else {
            Some(&*(raw as *const T))
        }
    }

    /// Dereferences a known-non-null pointer.
    ///
    /// # Safety
    ///
    /// As [`Shared::as_ref`], plus the pointer must be non-null.
    pub unsafe fn deref(self) -> &'g T {
        debug_assert!(!self.is_null());
        &*(self.untagged() as *const T)
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee and it must
    /// not be reachable by any other thread.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null());
        Owned::from_usize(self.untagged())
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }
    // SAFETY: implements the documented `Pointer::from_usize` contract.
    unsafe fn from_usize(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

/// Error of a failed [`Atomic::compare_exchange`]: the observed value
/// plus the not-installed new pointer, handed back to the caller.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The pointer that was not installed (ownership returned).
    pub new: P,
}

/// An atomic tagged pointer into epoch-managed memory.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic` is a pointer-sized atomic cell; the pointee's
// thread-safety is the data structure's responsibility, exactly as in
// upstream crossbeam (which bounds Send/Sync on T: Send + Sync at the
// collection level).
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Atomic<T> {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Loads the current value under `guard`'s protection.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        // SAFETY: representation round-trip.
        unsafe { Shared::from_usize(self.data.load(ord)) }
    }

    /// Stores `new`, consuming it.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Compare-exchange; on failure returns the observed value and the
    /// not-installed `new` pointer.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.into_usize(), new_data, success, failure)
        {
            // SAFETY: representation round-trips; on failure, ownership
            // of `new` is reconstructed exactly once.
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            Err(observed) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(observed) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    struct DropCounter<'a>(&'a StdAtomicUsize);
    impl Drop for DropCounter<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Tests that assert on reclamation *timing* must not overlap with
    /// each other (a pin in one would block the epoch for all).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn tag_round_trip() {
        let a = Atomic::<u64>::null();
        let g = pin();
        let s = a.load(Ordering::SeqCst, &g);
        assert!(s.is_null());
        assert_eq!(s.tag(), 0);
        let o = Owned::new(7u64);
        a.store(o, Ordering::SeqCst);
        let s = a.load(Ordering::SeqCst, &g);
        // SAFETY: `s` was just stored and nothing retires it.
        assert_eq!(unsafe { *s.deref() }, 7);
        assert_eq!(s.with_tag(1).tag(), 1);
        assert_eq!(s.with_tag(1).with_tag(0).tag(), 0);
        // SAFETY: clean-up with exclusive access; ownership reclaimed once.
        unsafe { drop(a.load(Ordering::SeqCst, &g).into_owned()) };
    }

    #[test]
    fn failed_cas_returns_owned() {
        let g = pin();
        let a = Atomic::<u64>::null();
        let first = Owned::new(1u64);
        a.store(first, Ordering::SeqCst);
        let cur = a.load(Ordering::SeqCst, &g);
        let stale = Shared::null();
        let res = a.compare_exchange(
            stale,
            Owned::new(2u64),
            Ordering::SeqCst,
            Ordering::SeqCst,
            &g,
        );
        let err = match res {
            Ok(_) => panic!("CAS against stale value must fail"),
            Err(e) => e,
        };
        assert_eq!(err.current.into_usize(), cur.into_usize());
        drop(err.new); // Owned handed back; dropping frees it.
                       // SAFETY: exclusive access at test end; ownership reclaimed once.
        unsafe { drop(a.load(Ordering::SeqCst, &g).into_owned()) };
    }

    #[test]
    fn deferred_destruction_eventually_runs() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        {
            let g = pin();
            for _ in 0..10 {
                let o = Owned::new(DropCounter(&DROPS));
                let raw = o.into_usize();
                // SAFETY: fresh allocation, never published.
                unsafe { g.defer_destroy(Shared::<DropCounter<'_>>::from_usize(raw)) };
            }
            assert_eq!(DROPS.load(Ordering::SeqCst), 0, "pinned: nothing freed yet");
        }
        // With no pin on this thread, collection rounds advance the
        // epoch twice and free everything (bounded retries: concurrent
        // tests may hold short-lived pins of their own).
        for _ in 0..10_000 {
            if DROPS.load(Ordering::SeqCst) == 10 {
                break;
            }
            collect();
            std::thread::yield_now();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let reader = pin();
        {
            let writer = pin();
            let o = Owned::new(DropCounter(&DROPS));
            let raw = o.into_usize();
            // SAFETY: `raw` came from `into_usize` of a fresh `Owned`,
            // never published, retired exactly once.
            unsafe { writer.defer_destroy(Shared::<DropCounter<'_>>::from_usize(raw)) };
        }
        for _ in 0..8 {
            collect();
        }
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            0,
            "a pinned guard on this thread must hold the epoch back"
        );
        drop(reader);
        for _ in 0..10_000 {
            if DROPS.load(Ordering::SeqCst) == 1 {
                break;
            }
            collect();
            std::thread::yield_now();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_share_one_activation() {
        let a = pin();
        let b = pin();
        drop(a);
        // Still pinned through `b`.
        LOCAL.with(|l| assert_eq!(l.pin_depth.get(), 1));
        drop(b);
        LOCAL.with(|l| assert_eq!(l.pin_depth.get(), 0));
    }

    #[test]
    fn defer_unchecked_runs_after_grace_period() {
        use std::sync::Arc;
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ran = Arc::new(StdAtomicUsize::new(0));
        {
            let g = pin();
            let r = Arc::clone(&ran);
            // SAFETY: the closure only touches an `Arc`'d counter that
            // outlives the collector (held by this test).
            unsafe {
                g.defer_unchecked(move || {
                    r.fetch_add(1, Ordering::SeqCst);
                })
            };
            assert_eq!(ran.load(Ordering::SeqCst), 0, "pinned: not yet");
        }
        for _ in 0..10_000 {
            if ran.load(Ordering::SeqCst) == 1 {
                break;
            }
            collect();
            std::thread::yield_now();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        // Unprotected: immediate.
        let ran2 = Arc::clone(&ran);
        // SAFETY: single-threaded here, so the unprotected guard's
        // exclusivity contract holds; the closure runs immediately.
        unsafe {
            unprotected().defer_unchecked(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn unprotected_defers_immediately() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        let o = Owned::new(DropCounter(&DROPS));
        let raw = o.into_usize();
        // SAFETY: single-threaded, so unprotected exclusivity holds;
        // `raw` is a fresh `Owned` retired exactly once.
        unsafe {
            let g = unprotected();
            g.defer_destroy(Shared::<DropCounter<'_>>::from_usize(raw));
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
