//! # lockfree-skiplist
//!
//! A lock-free skiplist set that applies the paper's pragmatic retry
//! improvements *per level* — the follow-on the paper proposes in §4:
//! the mild improvements are "easy, unintrusive improvements […] with
//! significant enough performance improvements to be considered, also
//! for more complex algorithms (skip lists and hash tables) that build
//! on the linked list data structure".
//!
//! The base algorithm is the Herlihy–Shavit lock-free skiplist (itself a
//! tower of Harris/Michael lists): each node carries a tower of marked
//! `next` pointers; logical deletion marks the tower top-down, the
//! bottom-level mark is the linearization point, and the search function
//! unlinks marked nodes level by level. The textbook version restarts
//! the *entire* multi-level search from the head sentinel on any failed
//! unlink `CAS()` — the same draconic behaviour the paper attacks, paid
//! once per level here. With `MILD = true` a failed unlink whose
//! predecessor did not become marked instead re-reads the predecessor's
//! pointer and continues at the current level, restarting only when the
//! predecessor itself is found marked.
//!
//! [`SkipListSet`] (mild) and [`DraconicSkipList`] (textbook) implement
//! the same [`ConcurrentOrderedSet`] interface as the lists, so the
//! benchmark drivers in `bench-harness` run them unchanged; the
//! `skiplist_mild` bench in `crates/bench` measures the difference.
//!
//! Memory reclamation follows the paper's scheme ([`pragmatic_list::arena`]):
//! nodes are registered at allocation and freed when the skiplist drops.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::marker::PhantomData;
use std::sync::atomic::AtomicI64;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};
use std::sync::{Arc, Mutex};

use glibc_rand::GlibcRandom;
use pragmatic_list::arena::{LocalArena, Registry};
use pragmatic_list::marked::{MarkedAtomic, MarkedPtr};
use pragmatic_list::ordered::{OrderedHandle, ScanBounds, Snapshot};
use pragmatic_list::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use pragmatic_list::{Key, OpStats};

/// Maximum tower height; with p = 1/2 this comfortably covers 2^20
/// elements.
pub const MAX_LEVEL: usize = 20;

struct SkipNode<K> {
    key: K,
    /// Tower of next pointers, `levels.len() == top_level + 1`; the mark
    /// on level 0 is the logical-deletion linearization point.
    levels: Vec<MarkedAtomic<SkipNode<K>>>,
}

impl<K: Key> SkipNode<K> {
    fn alloc(key: K, height: usize, succs: &[*mut SkipNode<K>]) -> *mut SkipNode<K> {
        let levels = (0..height)
            .map(|l| MarkedAtomic::new(succs.get(l).copied().unwrap_or(std::ptr::null_mut())))
            .collect();
        Box::into_raw(Box::new(SkipNode { key, levels }))
    }

    #[inline]
    fn top(&self) -> usize {
        self.levels.len() - 1
    }
}

/// Lock-free skiplist set, generic over the paper's mild-improvement
/// policy for failed unlink CASes.
///
/// # Examples
///
/// ```
/// use lockfree_skiplist::SkipListSet;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// let set = SkipListSet::<i64>::new();
/// std::thread::scope(|s| {
///     for t in 0..4i64 {
///         let set = &set;
///         s.spawn(move || {
///             let mut h = set.handle();
///             for i in 0..500 {
///                 h.add(t + i * 4);
///             }
///         });
///     }
/// });
/// let mut set = set;
/// assert_eq!(set.collect_keys().len(), 2000);
/// ```
pub struct SkipList<K: Key, const MILD: bool> {
    head: *mut SkipNode<K>,
    tail: *mut SkipNode<K>,
    registry: Registry<SkipNode<K>>,
    /// Per-handle live-item counter slots (same idiom as the flat
    /// lists' `LiveSlots`): each slot is written only by its owning
    /// handle, so `len_estimate` is an O(handles) sum instead of an
    /// O(n) bottom-level walk — which matters once the elastic morph
    /// sweep polls every shard's size each load window.
    live: Mutex<Vec<Arc<pragmatic_list::CachePadded<AtomicI64>>>>,
}

/// The mild-improvement skiplist (recommended).
pub type SkipListSet<K> = SkipList<K, true>;
/// The textbook skiplist: full restart on any failed unlink CAS.
pub type DraconicSkipList<K> = SkipList<K, false>;

// SAFETY: shared state behind atomics; nodes arena-stable until `Drop`,
// which `&mut self` serialises after all handles are gone.
unsafe impl<K: Key, const MILD: bool> Send for SkipList<K, MILD> {}
unsafe impl<K: Key, const MILD: bool> Sync for SkipList<K, MILD> {}

impl<K: Key, const MILD: bool> Default for SkipList<K, MILD> {
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K: Key, const MILD: bool> Drop for SkipList<K, MILD> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; every non-sentinel node registered once.
        unsafe {
            self.registry.free_all();
            drop(Box::from_raw(self.head));
            drop(Box::from_raw(self.tail));
        }
    }
}

impl<K: Key, const MILD: bool> SkipList<K, MILD> {
    /// Ordered snapshot of the live keys (bottom level, unmarked nodes).
    pub fn to_vec(&mut self) -> Vec<K> {
        let mut out = Vec::new();
        // SAFETY: exclusive access, arena-stable nodes.
        unsafe {
            let mut curr = (&(*self.head).levels)[0].load(Acquire).ptr();
            while curr != self.tail {
                if !(&(*curr).levels)[0].load(Acquire).is_marked() {
                    out.push((*curr).key);
                }
                curr = (&(*curr).levels)[0].load(Acquire).ptr();
            }
        }
        out
    }

    /// Structural invariants of the quiescent skiplist: every level is
    /// strictly sorted, reaches the tail, and is a sub-chain of the
    /// level below it.
    pub fn validate(&mut self) -> Result<(), InvariantViolation> {
        let budget = self.registry.len() + 2;
        // SAFETY: exclusive access.
        unsafe {
            // Collect the bottom-level node set for the subset check.
            let mut bottom: Vec<*mut SkipNode<K>> = Vec::new();
            let mut curr = (&(*self.head).levels)[0].load(Acquire).ptr();
            let mut steps = 0;
            while curr != self.tail {
                bottom.push(curr);
                curr = (&(*curr).levels)[0].load(Acquire).ptr();
                steps += 1;
                if steps > budget {
                    return Err(InvariantViolation::TailUnreachable);
                }
            }
            for level in 0..MAX_LEVEL {
                let mut prev_key = K::NEG_INF;
                let mut curr = (&(*self.head).levels)[level].load(Acquire).ptr();
                let mut pos = 0usize;
                while curr != self.tail {
                    if pos > budget {
                        return Err(InvariantViolation::TailUnreachable);
                    }
                    let k = (*curr).key;
                    if k <= prev_key || k >= K::POS_INF {
                        return Err(InvariantViolation::OutOfOrder { position: pos });
                    }
                    if level > 0 && !bottom.contains(&curr) {
                        // A node present above but unreachable at the
                        // bottom violates the tower-subset invariant
                        // (tolerating bottom-marked leftovers would need
                        // the mark check; quiescent lists post-search
                        // should not have them reachable above).
                        return Err(InvariantViolation::OutOfOrder { position: pos });
                    }
                    prev_key = k;
                    curr = (&(*curr).levels)[level].load(Acquire).ptr();
                    pos += 1;
                }
            }
        }
        Ok(())
    }

    /// Total nodes ever allocated (diagnostic).
    pub fn allocated_nodes(&self) -> usize {
        self.registry.len()
    }
}

impl<K: Key, const MILD: bool> ConcurrentOrderedSet<K> for SkipList<K, MILD> {
    type Handle<'a>
        = SkipListHandle<'a, K, MILD>
    where
        Self: 'a;

    const NAME: &'static str = if MILD {
        "skiplist_mild"
    } else {
        "skiplist_draconic"
    };

    fn new() -> Self {
        let tail = Box::into_raw(Box::new(SkipNode {
            key: K::POS_INF,
            levels: (0..MAX_LEVEL).map(|_| MarkedAtomic::null()).collect(),
        }));
        let head = Box::into_raw(Box::new(SkipNode {
            key: K::NEG_INF,
            levels: (0..MAX_LEVEL).map(|_| MarkedAtomic::new(tail)).collect(),
        }));
        Self {
            head,
            tail,
            registry: Registry::new(),
            live: Mutex::new(Vec::new()),
        }
    }

    fn handle(&self) -> SkipListHandle<'_, K, MILD> {
        // Every handle gets its own tower-height stream; a process-wide
        // counter keeps streams distinct across threads and lists.
        static HANDLE_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);
        let seq = HANDLE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Claim a live-counter slot: an orphaned one (no other owner)
        // when available, a fresh one otherwise — slots outlive their
        // handles so the residual net count keeps contributing.
        let live = {
            let mut slots = self.live.lock().unwrap();
            match slots.iter().find(|s| Arc::strong_count(s) == 1) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(pragmatic_list::CachePadded(AtomicI64::new(0)));
                    slots.push(Arc::clone(&slot));
                    slot
                }
            }
        };
        SkipListHandle {
            list: self,
            live,
            preds: [std::ptr::null_mut(); MAX_LEVEL],
            succs: [std::ptr::null_mut(); MAX_LEVEL],
            rng: GlibcRandom::new(glibc_rand::thread_seed(0x5EED_4B1D, seq)),
            arena: LocalArena::new(),
            stats: OpStats::ZERO,
            _not_sync: PhantomData,
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        self.to_vec()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.validate()
    }
}

/// Per-thread handle over a [`SkipList`]: owns the search scratch arrays
/// (`preds`/`succs`), the tower-height PRNG, counters and the
/// allocation log.
pub struct SkipListHandle<'l, K: Key, const MILD: bool> {
    list: &'l SkipList<K, MILD>,
    /// This handle's cache-padded live-item counter slot (successful
    /// adds minus successful removes); single-writer, so bumps are a
    /// plain load+store on an exclusively-held line.
    live: Arc<pragmatic_list::CachePadded<AtomicI64>>,
    preds: [*mut SkipNode<K>; MAX_LEVEL],
    succs: [*mut SkipNode<K>; MAX_LEVEL],
    rng: GlibcRandom,
    arena: LocalArena<SkipNode<K>>,
    stats: OpStats,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<'l, K: Key, const MILD: bool> Drop for SkipListHandle<'l, K, MILD> {
    fn drop(&mut self) {
        self.arena.flush_into(&self.list.registry);
    }
}

impl<'l, K: Key, const MILD: bool> SkipListHandle<'l, K, MILD> {
    /// Single-writer bump of this handle's live counter.
    #[inline]
    fn live_bump(&self, delta: i64) {
        self.live
            .0
            .store(self.live.0.load(Relaxed) + delta, Relaxed);
    }

    /// Geometric tower height with p = 1/2 (number of trailing ones of a
    /// 31-bit uniform draw), capped at `MAX_LEVEL`.
    fn random_height(&mut self) -> usize {
        let bits = self.rng.next_i31() as u32;
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Multi-level search: fills `preds`/`succs` so that at every level
    /// `preds[l].key < key <= succs[l].key`, unlinking marked nodes
    /// encountered on the way. Returns whether the bottom-level
    /// successor carries `key`.
    ///
    /// Failed unlink CASes follow the policy: textbook restarts the
    /// whole descent from the head; mild re-reads the predecessor's
    /// pointer and only restarts when the predecessor became marked —
    /// the paper's first observation transplanted to each level.
    fn find(&mut self, key: K) -> bool {
        let head = self.list.head;
        // SAFETY (whole body): arena-stable nodes, atomics throughout.
        unsafe {
            'retry: loop {
                let mut pred = head;
                for level in (0..MAX_LEVEL).rev() {
                    let mut curr = (&(*pred).levels)[level].load(Acquire).ptr();
                    loop {
                        let mut succ = (&(*curr).levels)[level].load(Acquire);
                        while succ.is_marked() {
                            let mut succ_ptr = succ.ptr();
                            match (&(*pred).levels)[level].compare_exchange(
                                MarkedPtr::unmarked(curr),
                                MarkedPtr::unmarked(succ_ptr),
                                AcqRel,
                                Acquire,
                            ) {
                                Ok(()) => {}
                                Err(observed) => {
                                    self.stats.fail += 1;
                                    if !MILD || observed.is_marked() {
                                        self.stats.rtry += 1;
                                        continue 'retry;
                                    }
                                    succ_ptr = observed.ptr();
                                }
                            }
                            curr = succ_ptr;
                            self.stats.trav += 1;
                            succ = (&(*curr).levels)[level].load(Acquire);
                        }
                        if (*curr).key < key {
                            pred = curr;
                            curr = succ.ptr();
                            self.stats.trav += 1;
                        } else {
                            break;
                        }
                    }
                    self.preds[level] = pred;
                    self.succs[level] = curr;
                }
                return (*self.succs[0]).key == key;
            }
        }
    }

    fn add_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let height = self.random_height();
        // SAFETY: arena-stable nodes.
        unsafe {
            loop {
                if self.find(key) {
                    return false;
                }
                let node = SkipNode::alloc(key, height, &self.succs[..height]);
                self.arena.record(node);
                // Bottom-level link is the insert linearization point.
                if (&(*self.preds[0]).levels)[0]
                    .compare_exchange(
                        MarkedPtr::unmarked(self.succs[0]),
                        MarkedPtr::unmarked(node),
                        AcqRel,
                        Acquire,
                    )
                    .is_err()
                {
                    // Lost the race; the node was never published. It is
                    // registered in the arena, so it will be reclaimed on
                    // drop; retry with a fresh search.
                    self.stats.fail += 1;
                    continue;
                }
                self.stats.adds += 1;
                self.live_bump(1);
                // Link the upper levels, refreshing the search on each
                // conflict. If our node gets deleted concurrently while
                // we are still linking, stop — the searches unlink
                // whatever we managed to publish.
                'levels: for level in 1..height {
                    loop {
                        let pred = self.preds[level];
                        let succ = self.succs[level];
                        // Point the node at its (possibly refreshed)
                        // successor, giving up if the level got marked.
                        let cur = (&(*node).levels)[level].load(Acquire);
                        if cur.is_marked() {
                            break 'levels;
                        }
                        if cur.ptr() != succ
                            && (&(*node).levels)[level]
                                .compare_exchange(cur, MarkedPtr::unmarked(succ), AcqRel, Acquire)
                                .is_err()
                        {
                            break 'levels; // concurrently marked
                        }
                        if (&(*pred).levels)[level]
                            .compare_exchange(
                                MarkedPtr::unmarked(succ),
                                MarkedPtr::unmarked(node),
                                AcqRel,
                                Acquire,
                            )
                            .is_ok()
                        {
                            continue 'levels;
                        }
                        self.stats.fail += 1;
                        self.find(key);
                        if self.succs[level] == node {
                            continue 'levels; // someone linked it for us
                        }
                        if !std::ptr::eq(self.succs[0], node) {
                            break 'levels; // node already deleted
                        }
                    }
                }
                return true;
            }
        }
    }

    fn remove_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        // SAFETY: arena-stable nodes.
        unsafe {
            if !self.find(key) {
                return false;
            }
            let node = self.succs[0];
            // Mark the upper levels top-down (idempotent; concurrent
            // removers may race here, only the bottom level decides).
            for level in (1..=(*node).top()).rev() {
                let mut s = (&(*node).levels)[level].load(Acquire);
                while !s.is_marked() {
                    match (&(*node).levels)[level].compare_exchange(
                        s,
                        s.with_mark(),
                        AcqRel,
                        Acquire,
                    ) {
                        Ok(()) => break,
                        Err(observed) => {
                            self.stats.fail += 1;
                            s = observed;
                        }
                    }
                }
            }
            // Bottom level: the linearization point. The in-place retry
            // loop is the paper's mild rem() improvement (the textbook
            // alternative would re-run the whole multi-level find).
            let mut s = (&(*node).levels)[0].load(Acquire);
            loop {
                if s.is_marked() {
                    return false; // another thread won the delete
                }
                match (&(*node).levels)[0].compare_exchange(s, s.with_mark(), AcqRel, Acquire) {
                    Ok(()) => {
                        // Physical unlink through a fresh search.
                        self.find(key);
                        self.stats.rems += 1;
                        self.live_bump(-1);
                        return true;
                    }
                    Err(observed) => {
                        self.stats.fail += 1;
                        s = observed;
                    }
                }
            }
        }
    }

    fn contains_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        // Wait-free descent that skips marked nodes without helping.
        // SAFETY: arena-stable nodes.
        unsafe {
            let mut pred = self.list.head;
            let mut curr = pred;
            for level in (0..MAX_LEVEL).rev() {
                curr = (&(*pred).levels)[level].load(Acquire).ptr();
                loop {
                    let mut succ = (&(*curr).levels)[level].load(Acquire);
                    while succ.is_marked() {
                        curr = succ.ptr();
                        self.stats.cons += 1;
                        succ = (&(*curr).levels)[level].load(Acquire);
                    }
                    if (*curr).key < key {
                        pred = curr;
                        curr = succ.ptr();
                        self.stats.cons += 1;
                    } else {
                        break;
                    }
                }
            }
            (*curr).key == key && !(&(*curr).levels)[0].load(Acquire).is_marked()
        }
    }
}

impl<'l, K: Key, const MILD: bool> SetHandle<K> for SkipListHandle<'l, K, MILD> {
    #[inline]
    fn add(&mut self, key: K) -> bool {
        self.add_impl(key)
    }

    #[inline]
    fn remove(&mut self, key: K) -> bool {
        self.remove_impl(key)
    }

    #[inline]
    fn contains(&mut self, key: K) -> bool {
        self.contains_impl(key)
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }
}

impl<'l, K: Key, const MILD: bool> OrderedHandle<K> for SkipListHandle<'l, K, MILD> {
    fn range<R: std::ops::RangeBounds<K>>(&mut self, range: R) -> Snapshot<K> {
        let bounds = ScanBounds::from_range(&range);
        let mut out = Vec::new();
        // SAFETY: arena-stable nodes; wait-free read-only traversal.
        unsafe {
            let tail = self.list.tail;
            // Tower descent to the last node strictly below the window
            // start — this is where the skiplist earns its keep over the
            // flat lists' O(n) walk to the window.
            let mut pred = self.list.head;
            if let Some(seek) = bounds.seek_key() {
                for level in (0..MAX_LEVEL).rev() {
                    let mut curr = (&(*pred).levels)[level].load(Acquire).ptr();
                    while curr != tail && (*curr).key < seek {
                        pred = curr;
                        curr = (&(*curr).levels)[level].load(Acquire).ptr();
                    }
                }
            }
            // Bottom-level walk across the window (keys strictly
            // increase along level 0).
            pragmatic_list::ordered::scan_chain(
                &bounds,
                (&(*pred).levels)[0].load(Acquire).ptr(),
                tail,
                |p| {
                    let succ = (&(*p).levels)[0].load(Acquire);
                    ((*p).key, !succ.is_marked(), succ.ptr())
                },
                |_, key| out.push(key),
            );
        }
        Snapshot::from_vec(out)
    }

    fn len_estimate(&mut self) -> usize {
        // O(handles) sum of the per-handle live counters — exact when
        // quiescent, an estimate under concurrency (same contract as
        // the bottom-level walk it replaces, without the O(n) cost the
        // elastic morph sweep would otherwise pay per load window).
        let total: i64 = self
            .list
            .live
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.0.load(Relaxed))
            .sum();
        total.max(0) as usize
    }
}

/// The mild skiplist range-partitioned across `N` keyspace shards (see
/// [`pragmatic_list::sharded`]): each shard is a full skiplist, so the
/// tower descent runs over `1/N`-th of the keys while the facade keeps
/// the `ConcurrentOrderedSet` + `OrderedHandle` surface.
pub type ShardedSkipList<K, const N: usize> =
    pragmatic_list::sharded::ShardedSet<K, SkipListSet<K>, N>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_alias_routes_and_scans() {
        let set = ShardedSkipList::<i64, 8>::new();
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.handle();
                    // Spread across the keyspace so several shards engage.
                    for i in 0..250 {
                        assert!(h.add((t + i * 4 - 500) * (i64::MAX / 1024)));
                    }
                });
            }
        });
        let mut h = set.handle();
        assert_eq!(h.len_estimate(), 1000);
        let all = h.iter().into_vec();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 1000);
        set.check_invariants().unwrap();
    }

    #[test]
    fn basic_semantics_both_policies() {
        fn run<S: ConcurrentOrderedSet<i64>>() {
            let s = S::new();
            let mut h = s.handle();
            assert!(!h.contains(5));
            assert!(h.add(5));
            assert!(!h.add(5));
            assert!(h.contains(5));
            assert!(h.add(3) && h.add(7) && h.add(1));
            assert!(h.remove(5));
            assert!(!h.remove(5));
            assert!(!h.contains(5));
            assert!(h.contains(3) && h.contains(7) && h.contains(1));
            assert!(h.add(5));
        }
        run::<SkipListSet<i64>>();
        run::<DraconicSkipList<i64>>();
    }

    #[test]
    fn snapshot_sorted_and_validates() {
        let mut s = SkipListSet::<i64>::new();
        {
            let mut h = s.handle();
            for k in [50i64, 20, 80, 10, 60, 30, 90, 40, 70] {
                assert!(h.add(k));
            }
            assert!(h.remove(50));
            assert!(h.remove(10));
        }
        assert_eq!(s.to_vec(), vec![20, 30, 40, 60, 70, 80, 90]);
        s.validate().unwrap();
    }

    #[test]
    fn large_sequential_insert_logarithmic_contains() {
        let n = 20_000i64;
        let s = SkipListSet::<i64>::new();
        let mut h = s.handle();
        for k in 1..=n {
            h.add(k);
        }
        let _ = h.take_stats();
        for k in [1, n / 4, n / 2, n - 1, n] {
            assert!(h.contains(k));
        }
        let cons = h.stats().cons;
        // 5 lookups in a 20k-element skiplist: roughly 5 * (log2(20k) + levels)
        // traversal steps; generous bound to stay robust to tower luck.
        assert!(
            cons < 5 * 200,
            "skiplist contains should be logarithmic, cons={cons}"
        );
    }

    #[test]
    fn tower_heights_are_geometric() {
        let s = SkipListSet::<i64>::new();
        let mut h = s.handle();
        let mut counts = [0u32; MAX_LEVEL + 1];
        for _ in 0..10_000 {
            counts[h.random_height()] += 1;
        }
        assert_eq!(counts[0], 0, "heights start at 1");
        assert!(
            counts[1] > 4_000 && counts[1] < 6_000,
            "P(h=1)≈1/2: {}",
            counts[1]
        );
        assert!(
            counts[2] > 1_900 && counts[2] < 3_100,
            "P(h=2)≈1/4: {}",
            counts[2]
        );
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let s = SkipListSet::<i64>::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    let mut h = s.handle();
                    for i in 0..1_000 {
                        assert!(h.add(t + i * 4 + 1));
                    }
                });
            }
        });
        let mut s = s;
        assert_eq!(s.to_vec().len(), 4_000);
        s.validate().unwrap();
    }

    #[test]
    fn concurrent_same_key_single_winner() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for _ in 0..20 {
            let s = SkipListSet::<i64>::new();
            let wins = AtomicU32::new(0);
            std::thread::scope(|sc| {
                for _ in 0..8 {
                    let s = &s;
                    let wins = &wins;
                    sc.spawn(move || {
                        let mut h = s.handle();
                        if h.add(42) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn concurrent_add_remove_churn_validates() {
        let s = SkipListSet::<i64>::new();
        let totals: OpStats = std::thread::scope(|sc| {
            let ws: Vec<_> = (0..8)
                .map(|t| {
                    let s = &s;
                    sc.spawn(move || {
                        let mut h = s.handle();
                        let mut rng = GlibcRandom::new(glibc_rand::thread_seed(31337, t));
                        for _ in 0..2_000 {
                            let k = rng.below(128) as i64 + 1;
                            if rng.below(2) == 0 {
                                h.add(k);
                            } else {
                                h.remove(k);
                            }
                        }
                        h.take_stats()
                    })
                })
                .collect();
            ws.into_iter().map(|w| w.join().unwrap()).sum()
        });
        let mut s = s;
        s.validate().unwrap();
        let live = s.to_vec().len();
        assert_eq!(totals.adds - totals.rems, live as u64);
        let mut h = s.handle();
        assert_eq!(
            h.len_estimate(),
            live,
            "O(1) live counter is exact at quiescence"
        );
    }

    #[test]
    fn draconic_restarts_more_than_mild_under_contention() {
        fn run<S: ConcurrentOrderedSet<i64>>() -> OpStats {
            let s = S::new();
            std::thread::scope(|sc| {
                let ws: Vec<_> = (0..8)
                    .map(|t| {
                        let s = &s;
                        sc.spawn(move || {
                            let mut h = s.handle();
                            let mut rng = GlibcRandom::new(glibc_rand::thread_seed(7, t));
                            for _ in 0..3_000 {
                                let k = rng.below(16) as i64 + 1;
                                if rng.below(2) == 0 {
                                    h.add(k);
                                } else {
                                    h.remove(k);
                                }
                            }
                            h.take_stats()
                        })
                    })
                    .collect();
                ws.into_iter().map(|w| w.join().unwrap()).sum()
            })
        }
        // On a single-core box contention is scheduler-dependent, so the
        // only safe assertions are the structural ones that hold on any
        // schedule: a restart is always preceded by a failed CAS, and the
        // mild policy can only ever restart *less* often per failure than
        // the textbook one (which restarts on every unlink failure).
        let mild = run::<SkipListSet<i64>>();
        let drac = run::<DraconicSkipList<i64>>();
        assert!(
            mild.rtry <= mild.fail,
            "restart implies a failed CAS: {mild:?}"
        );
        assert!(
            drac.rtry <= drac.fail,
            "restart implies a failed CAS: {drac:?}"
        );
    }

    #[test]
    fn matches_seq_oracle_on_random_tape() {
        use seq_list::{SeqOrderedSet, SinglySeqList};
        let s = SkipListSet::<i64>::new();
        let mut h = s.handle();
        let mut oracle = SinglySeqList::<i64>::new();
        let mut rng = GlibcRandom::new(777);
        for _ in 0..5_000 {
            let k = rng.below(64) as i64 + 1;
            match rng.below(3) {
                0 => assert_eq!(h.add(k), oracle.insert(k)),
                1 => assert_eq!(h.remove(k), oracle.remove(k)),
                _ => assert_eq!(h.contains(k), oracle.contains(k)),
            }
        }
        drop(h);
        let mut s = s;
        assert_eq!(s.to_vec(), oracle.to_vec());
    }
}
